//! The generic disk-based R*-tree.
//!
//! Implements insertion with forced reinsertion, deletion with tree
//! condensation, and pruned traversal — all in terms of [`KeyMetrics`], so
//! the same code drives the baseline R*-tree, the U-tree (summed metrics)
//! and U-PCR.

use crate::codec::{InnerEntry, NodeCodec};
use crate::metrics::{KeyMetrics, LeafRecord};
use crate::split::rstar_split;
use page_store::{IoStats, PageFile, PageId, PageStore, PAGE_SIZE};
use std::io;
use std::sync::Arc;

/// ChooseSubtree examines at most this many candidates with the overlap
/// criterion (the R*-tree paper's constant).
const CHOOSE_SUBTREE_CANDIDATES: usize = 32;

/// Tuning knobs (R* defaults from Beckmann et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Minimum node fill as a fraction of capacity (R*: 40%).
    pub min_fill: f64,
    /// Fraction of entries removed by forced reinsertion (R*: 30%).
    pub reinsert_frac: f64,
    /// Containment slack for the deletion descent (absorbs the f32 on-page
    /// rounding of keys; see `KeyMetrics::covers`).
    pub covers_tolerance: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            min_fill: 0.4,
            reinsert_frac: 0.3,
            covers_tolerance: 0.05,
        }
    }
}

/// Per-level structure statistics (diagnostics; computed without touching
/// the I/O counters).
#[derive(Debug, Clone, Default)]
pub struct TreeStats {
    /// Number of nodes per level (index 0 = leaves).
    pub nodes_per_level: Vec<usize>,
    /// Total entries per level.
    pub entries_per_level: Vec<usize>,
}

impl TreeStats {
    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.nodes_per_level.iter().sum()
    }
}

enum Node<K, L> {
    Leaf(Vec<L>),
    Inner(Vec<InnerEntry<K>>),
}

enum Entry<K, L> {
    Leaf(L),
    Inner(InnerEntry<K>),
}

struct InsertResult<K> {
    key: K,
    split: Option<InnerEntry<K>>,
}

enum DeleteOutcome<K> {
    NotFound,
    Kept(Option<K>),
    Dropped,
}

/// A disk-based R*-tree over records `L` bounded by keys `M::Key`,
/// generic over the [`PageStore`] its nodes live on (in-memory page file,
/// disk file, or a buffer pool over either).
pub struct RStarTreeBase<const D: usize, M, L, C, S = PageFile>
where
    M: KeyMetrics<D>,
    L: LeafRecord<M::Key>,
    C: NodeCodec<M::Key, L>,
    S: PageStore,
{
    file: S,
    root: PageId,
    /// Number of levels (1 = the root is a leaf).
    height: usize,
    len: usize,
    metrics: M,
    codec: C,
    cfg: TreeConfig,
    _leaf: std::marker::PhantomData<L>,
}

impl<const D: usize, M, L, C, S> Clone for RStarTreeBase<D, M, L, C, S>
where
    M: KeyMetrics<D> + Clone,
    L: LeafRecord<M::Key>,
    C: NodeCodec<M::Key, L> + Clone,
    S: PageStore + Clone,
{
    /// Clones the tree, page store included. On a copy-on-write store this
    /// is the epoch fork: both trees share page content until one writes.
    fn clone(&self) -> Self {
        Self {
            file: self.file.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            metrics: self.metrics.clone(),
            codec: self.codec.clone(),
            cfg: self.cfg,
            _leaf: std::marker::PhantomData,
        }
    }
}

impl<const D: usize, M, L, C, S> RStarTreeBase<D, M, L, C, S>
where
    M: KeyMetrics<D>,
    L: LeafRecord<M::Key>,
    C: NodeCodec<M::Key, L>,
    S: PageStore,
{
    /// Creates an empty tree (one empty leaf page) on a default store.
    /// Default stores are in-memory and cannot fail.
    pub fn new(metrics: M, codec: C, cfg: TreeConfig) -> Self
    where
        S: Default,
    {
        Self::with_store(S::default(), metrics, codec, cfg)
            // xlint: allow(panic-freedom) -- invariant: in-memory page store cannot fail
            .expect("in-memory page store cannot fail")
    }

    /// Creates an empty tree on the given store.
    pub fn with_store(mut file: S, metrics: M, codec: C, cfg: TreeConfig) -> io::Result<Self> {
        assert!(codec.leaf_capacity() >= 4, "leaf fanout too small");
        assert!(codec.inner_capacity() >= 4, "inner fanout too small");
        let root = file.allocate()?;
        let mut tree = Self {
            file,
            root,
            height: 1,
            len: 0,
            metrics,
            codec,
            cfg,
            _leaf: std::marker::PhantomData,
        };
        tree.store_node(root, 0, &Node::Leaf(Vec::new()))?;
        Ok(tree)
    }

    /// Builds a tree from pre-ordered records by bottom-up packing
    /// (Sort-Tile-Recursive bulk loading; see [`crate::str_order_by`] for
    /// the ordering step). `records` are packed into leaves at full
    /// fan-out in the order given, then each internal level is packed the
    /// same way over the level below, so sibling records land in sibling
    /// pages and every bounding key is computed exactly once.
    ///
    /// Two structural guarantees the insert path cannot give:
    ///
    /// * **Zero-waste packing** — every node except at most the last two
    ///   per level is at full fan-out (the trailing pair is rebalanced so
    ///   both meet the R* minimum fill).
    /// * **Level-contiguous layout** — on a fresh store, pages are
    ///   allocated leaves-first in record order, then each internal level,
    ///   root last; traversals of nearby records touch nearby pages.
    pub fn bulk_build_ordered(
        file: S,
        records: Vec<L>,
        metrics: M,
        codec: C,
        cfg: TreeConfig,
    ) -> io::Result<Self> {
        let mut tree = Self::with_store(file, metrics, codec, cfg)?;
        tree.bulk_rebuild_ordered(records)?;
        Ok(tree)
    }

    /// In-place [`Self::bulk_build_ordered`] over this tree's own (empty)
    /// store — the store-generic entry point for index types that own a
    /// tree and cannot construct a fresh `S`. The seed root page is
    /// released first, so on a fresh store the pop of the free list makes
    /// the packed layout start at page 0 exactly as the static builder's.
    pub fn bulk_rebuild_ordered(&mut self, records: Vec<L>) -> io::Result<()> {
        assert!(
            self.is_empty(),
            "bulk_rebuild_ordered requires an empty tree"
        );
        if records.is_empty() {
            return Ok(());
        }
        self.file.release(self.root);
        self.len = records.len();
        // Leaves, in record order.
        let sizes = pack_sizes(self.len, self.codec.leaf_capacity(), self.min_fill_count(0));
        let mut level_entries: Vec<InnerEntry<M::Key>> = Vec::with_capacity(sizes.len());
        let mut it = records.into_iter();
        for sz in sizes {
            let node = Node::Leaf(it.by_ref().take(sz).collect());
            let page = self.file.allocate()?;
            self.store_node(page, 0, &node)?;
            level_entries.push(InnerEntry {
                // xlint: allow(panic-freedom) -- invariant: packed chunk is non-empty
                key: self.node_key(&node).expect("packed chunk is non-empty"),
                child: page,
            });
        }
        // Internal levels, bottom-up, until one node bounds everything.
        let mut level = 0;
        while level_entries.len() > 1 {
            level += 1;
            let sizes = pack_sizes(
                level_entries.len(),
                self.codec.inner_capacity(),
                self.min_fill_count(level),
            );
            let mut next = Vec::with_capacity(sizes.len());
            let mut it = level_entries.into_iter();
            for sz in sizes {
                let node = Node::Inner(it.by_ref().take(sz).collect());
                let page = self.file.allocate()?;
                self.store_node(page, level, &node)?;
                next.push(InnerEntry {
                    // xlint: allow(panic-freedom) -- invariant: packed chunk is non-empty
                    key: self.node_key(&node).expect("packed chunk is non-empty"),
                    child: page,
                });
            }
            level_entries = next;
        }
        self.root = level_entries[0].child;
        self.height = level + 1;
        Ok(())
    }

    /// Reattaches a tree whose pages already live in `file` (persistence):
    /// `root`/`height`/`len` are the superstructure saved alongside the
    /// page data. No validation is performed here; callers verify the
    /// store's provenance (magic numbers, catalogs) first.
    pub fn from_raw_parts(
        file: S,
        root: PageId,
        height: usize,
        len: usize,
        metrics: M,
        codec: C,
        cfg: TreeConfig,
    ) -> Self {
        Self {
            file,
            root,
            height,
            len,
            metrics,
            codec,
            cfg,
            _leaf: std::marker::PhantomData,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The metrics strategy.
    pub fn metrics(&self) -> &M {
        &self.metrics
    }

    /// The node codec.
    pub fn codec(&self) -> &C {
        &self.codec
    }

    /// The R* tuning knobs this tree runs with.
    pub fn config(&self) -> TreeConfig {
        self.cfg
    }

    /// Shared I/O counters of the node store (logical accesses when the
    /// store is a buffer pool).
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.file.stats()
    }

    /// The node store.
    pub fn store(&self) -> &S {
        &self.file
    }

    /// Mutable access to the node store (flushing, pool tuning).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.file
    }

    /// Page id of the root node (persistence metadata).
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Size of the node file in bytes (Table 1's metric).
    pub fn size_bytes(&self) -> u64 {
        self.file.size_bytes()
    }

    /// Live node count.
    pub fn node_count(&self) -> usize {
        self.file.live_pages()
    }

    // ---- node I/O -------------------------------------------------------

    fn load(&self, page: PageId) -> io::Result<(usize, Node<M::Key, L>)> {
        let mut bytes = [0u8; PAGE_SIZE];
        self.file.read_into(page, &mut bytes)?;
        let level = bytes[0] as usize;
        let node = if level == 0 {
            Node::Leaf(self.codec.decode_leaf(&bytes[1..]))
        } else {
            Node::Inner(self.codec.decode_inner(&bytes[1..]))
        };
        Ok((level, node))
    }

    fn store_node(&mut self, page: PageId, level: usize, node: &Node<M::Key, L>) -> io::Result<()> {
        let mut out = Vec::with_capacity(page_store::PAGE_SIZE);
        out.push(level as u8);
        match node {
            Node::Leaf(es) => {
                debug_assert_eq!(level, 0);
                debug_assert!(es.len() <= self.codec.leaf_capacity());
                self.codec.encode_leaf(es, &mut out);
            }
            Node::Inner(es) => {
                debug_assert!(level > 0);
                debug_assert!(es.len() <= self.codec.inner_capacity());
                self.codec.encode_inner(es, &mut out);
            }
        }
        self.file.write(page, &out)
    }

    fn node_len(node: &Node<M::Key, L>) -> usize {
        match node {
            Node::Leaf(es) => es.len(),
            Node::Inner(es) => es.len(),
        }
    }

    fn node_capacity(&self, level: usize) -> usize {
        if level == 0 {
            self.codec.leaf_capacity()
        } else {
            self.codec.inner_capacity()
        }
    }

    fn min_fill_count(&self, level: usize) -> usize {
        ((self.node_capacity(level) as f64 * self.cfg.min_fill) as usize).max(1)
    }

    fn node_key(&self, node: &Node<M::Key, L>) -> Option<M::Key> {
        match node {
            Node::Leaf(es) => {
                let mut it = es.iter();
                let first = it.next()?;
                let mut acc = first.key();
                for e in it {
                    self.metrics.union_with(&mut acc, &e.key());
                }
                Some(acc)
            }
            Node::Inner(es) => {
                let mut it = es.iter();
                let first = it.next()?;
                let mut acc = first.key.clone();
                for e in it {
                    self.metrics.union_with(&mut acc, &e.key);
                }
                Some(acc)
            }
        }
    }

    /// The bounding key of the whole tree (`None` when empty).
    pub fn root_key(&self) -> io::Result<Option<M::Key>> {
        let (_, node) = self.load(self.root)?;
        Ok(self.node_key(&node))
    }

    // ---- insertion ------------------------------------------------------

    /// Inserts a record (R* insertion with forced reinsertion).
    pub fn insert(&mut self, record: L) -> io::Result<()> {
        self.len += 1;
        let mut reinserted = vec![false; self.height];
        self.run_inserts(vec![(0usize, Entry::Leaf(record))], &mut reinserted)
    }

    fn run_inserts(
        &mut self,
        mut pending: Vec<(usize, Entry<M::Key, L>)>,
        reinserted: &mut Vec<bool>,
    ) -> io::Result<()> {
        while let Some((level, entry)) = pending.pop() {
            debug_assert!(level < self.height);
            let res = self.insert_rec(
                self.root,
                self.height - 1,
                entry,
                level,
                reinserted,
                &mut pending,
            )?;
            if let Some(sibling) = res.split {
                // Root split: grow the tree by one level.
                let new_root = self.file.allocate()?;
                let entries = vec![
                    InnerEntry {
                        key: res.key,
                        child: self.root,
                    },
                    sibling,
                ];
                let new_level = self.height;
                self.store_node(new_root, new_level, &Node::Inner(entries))?;
                self.root = new_root;
                self.height += 1;
                reinserted.push(true); // no forced reinsert at a brand-new root level
            }
        }
        Ok(())
    }

    fn entry_key(&self, e: &Entry<M::Key, L>) -> M::Key {
        match e {
            Entry::Leaf(r) => r.key(),
            Entry::Inner(ie) => ie.key.clone(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        &mut self,
        page: PageId,
        level: usize,
        entry: Entry<M::Key, L>,
        target_level: usize,
        reinserted: &mut [bool],
        pending: &mut Vec<(usize, Entry<M::Key, L>)>,
    ) -> io::Result<InsertResult<M::Key>> {
        let (lvl, mut node) = self.load(page)?;
        debug_assert_eq!(lvl, level, "page level mismatch");

        if level > target_level {
            let ekey = self.entry_key(&entry);
            let Node::Inner(ref mut entries) = node else {
                // xlint: allow(panic-freedom) -- invariant: non-leaf level must hold an inner node
                unreachable!("non-leaf level must hold an inner node")
            };
            let idx = self.choose_subtree(entries, &ekey, level == 1);
            let child = entries[idx].child;
            // Recurse with `node` set aside; reload cost avoided by keeping
            // the decoded entries and patching them afterwards.
            let child_res =
                self.insert_rec(child, level - 1, entry, target_level, reinserted, pending)?;
            entries[idx].key = child_res.key;
            if let Some(sib) = child_res.split {
                entries.push(sib);
            }
            return self.finish_overflow(page, level, node, reinserted, pending);
        }

        // level == target_level: the entry lands here.
        match (&mut node, entry) {
            (Node::Leaf(es), Entry::Leaf(r)) => es.push(r),
            (Node::Inner(es), Entry::Inner(ie)) => es.push(ie),
            // xlint: allow(panic-freedom) -- invariant: entry kind must match node kind at its level
            _ => unreachable!("entry kind must match node kind at its level"),
        }
        self.finish_overflow(page, level, node, reinserted, pending)
    }

    /// Stores `node`, handling overflow by forced reinsertion or split.
    fn finish_overflow(
        &mut self,
        page: PageId,
        level: usize,
        mut node: Node<M::Key, L>,
        reinserted: &mut [bool],
        pending: &mut Vec<(usize, Entry<M::Key, L>)>,
    ) -> io::Result<InsertResult<M::Key>> {
        let cap = self.node_capacity(level);
        if Self::node_len(&node) <= cap {
            self.store_node(page, level, &node)?;
            return Ok(InsertResult {
                // xlint: allow(panic-freedom) -- invariant: non-empty after insert
                key: self.node_key(&node).expect("non-empty after insert"),
                split: None,
            });
        }

        // Overflow treatment (R* §4.3): first overflow at each level per
        // insertion (root excluded) triggers forced reinsertion.
        if page != self.root && !reinserted[level] {
            reinserted[level] = true;
            let victims = self.pick_reinsert_victims(&mut node, cap);
            self.store_node(page, level, &node)?;
            // Push in far-to-near order so the LIFO pending stack performs
            // "close reinsert" (nearest first), the variant R* recommends.
            for v in victims {
                pending.push((level, v));
            }
            return Ok(InsertResult {
                key: self
                    .node_key(&node)
                    // xlint: allow(panic-freedom) -- invariant: reinsertion leaves entries behind
                    .expect("reinsertion leaves entries behind"),
                split: None,
            });
        }

        // Split (paper Sec 5.3: R*-split over the split rectangles).
        let (a, b) = self.split_node(node);
        self.store_node(page, level, &a)?;
        let sib_page = self.file.allocate()?;
        self.store_node(sib_page, level, &b)?;
        Ok(InsertResult {
            // xlint: allow(panic-freedom) -- invariant: split group A non-empty
            key: self.node_key(&a).expect("split group A non-empty"),
            split: Some(InnerEntry {
                // xlint: allow(panic-freedom) -- invariant: split group B non-empty
                key: self.node_key(&b).expect("split group B non-empty"),
                child: sib_page,
            }),
        })
    }

    /// Removes the `reinsert_frac` entries whose keys are farthest (summed
    /// centroid distance) from the node's bounding key.
    fn pick_reinsert_victims(
        &self,
        node: &mut Node<M::Key, L>,
        cap: usize,
    ) -> Vec<Entry<M::Key, L>> {
        let p = ((cap as f64 * self.cfg.reinsert_frac) as usize).max(1);
        // xlint: allow(panic-freedom) -- invariant: overflowing node is non-empty
        let bound = self.node_key(node).expect("overflowing node is non-empty");
        match node {
            Node::Leaf(es) => {
                let mut order: Vec<usize> = (0..es.len()).collect();
                order.sort_by(|&i, &j| {
                    let di = self.metrics.centroid_distance(&es[i].key(), &bound);
                    let dj = self.metrics.centroid_distance(&es[j].key(), &bound);
                    dj.total_cmp(&di)
                });
                let victims: Vec<usize> = order[..p].to_vec();
                extract(es, &victims).into_iter().map(Entry::Leaf).collect()
            }
            Node::Inner(es) => {
                let mut order: Vec<usize> = (0..es.len()).collect();
                order.sort_by(|&i, &j| {
                    let di = self.metrics.centroid_distance(&es[i].key, &bound);
                    let dj = self.metrics.centroid_distance(&es[j].key, &bound);
                    dj.total_cmp(&di)
                });
                let victims: Vec<usize> = order[..p].to_vec();
                extract(es, &victims)
                    .into_iter()
                    .map(Entry::Inner)
                    .collect()
            }
        }
    }

    fn split_node(&self, node: Node<M::Key, L>) -> (Node<M::Key, L>, Node<M::Key, L>) {
        match node {
            Node::Leaf(es) => {
                let rects: Vec<_> = es
                    .iter()
                    .map(|e| self.metrics.split_rect(&e.key()))
                    .collect();
                let min_fill = self.min_fill_count(0);
                let (g1, g2) = rstar_split(&rects, min_fill);
                let (a, b) = partition(es, &g1, &g2);
                (Node::Leaf(a), Node::Leaf(b))
            }
            Node::Inner(es) => {
                let rects: Vec<_> = es.iter().map(|e| self.metrics.split_rect(&e.key)).collect();
                let min_fill = self.min_fill_count(1);
                let (g1, g2) = rstar_split(&rects, min_fill);
                let (a, b) = partition(es, &g1, &g2);
                (Node::Inner(a), Node::Inner(b))
            }
        }
    }

    /// R* ChooseSubtree: overlap-enlargement for leaf parents, area
    /// enlargement above (ties: area enlargement, then area).
    ///
    /// As in the R*-tree paper, the O(n²) overlap criterion only examines
    /// the [`CHOOSE_SUBTREE_CANDIDATES`] entries with the least area
    /// enlargement; overlap itself runs on precomputed profiles so the
    /// U-tree's summed metric does not re-interpolate per pair.
    fn choose_subtree(
        &self,
        entries: &[InnerEntry<M::Key>],
        ekey: &M::Key,
        children_are_leaves: bool,
    ) -> usize {
        debug_assert!(!entries.is_empty());
        // Rank everything by (area enlargement, area).
        let scored: Vec<(f64, f64)> = entries
            .iter()
            .map(|cand| {
                let enlarged = self.metrics.union(&cand.key, ekey);
                let area_before = self.metrics.area(&cand.key);
                (self.metrics.area(&enlarged) - area_before, area_before)
            })
            .collect();
        if !children_are_leaves {
            let mut best = 0usize;
            for i in 1..entries.len() {
                if scored[i] < scored[best] {
                    best = i;
                }
            }
            return best;
        }
        // Leaf parents: overlap criterion over the best few candidates.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            scored[a]
                .0
                .total_cmp(&scored[b].0)
                .then(scored[a].1.total_cmp(&scored[b].1))
        });
        order.truncate(CHOOSE_SUBTREE_CANDIDATES);
        let profiles: Vec<M::OverlapProfile> = entries
            .iter()
            .map(|e| self.metrics.overlap_profile(&e.key))
            .collect();
        let mut best = order[0];
        let mut best_score = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in &order {
            let enlarged = self.metrics.union(&entries[i].key, ekey);
            let enlarged_profile = self.metrics.overlap_profile(&enlarged);
            let mut delta = 0.0;
            for (j, other) in profiles.iter().enumerate() {
                if j == i {
                    continue;
                }
                delta += self.metrics.profile_overlap(&enlarged_profile, other)
                    - self.metrics.profile_overlap(&profiles[i], other);
            }
            let score = (delta, scored[i].0, scored[i].1);
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    // ---- deletion -------------------------------------------------------

    /// Deletes the record with identifier `id` whose key is covered by
    /// `probe_key` (usually the record's own key, possibly rounded by the
    /// on-page codec). Returns the removed record when found. Dissolved
    /// under-full nodes are condensed and their entries reinserted (R-tree
    /// CondenseTree).
    pub fn delete(&mut self, probe_key: &M::Key, id: u64) -> io::Result<Option<L>> {
        if self.len == 0 {
            return Ok(None);
        }
        let mut orphans: Vec<(usize, Entry<M::Key, L>)> = Vec::new();
        let mut removed: Option<L> = None;
        let outcome = self.delete_rec(
            self.root,
            self.height - 1,
            probe_key,
            id,
            &mut orphans,
            &mut removed,
        )?;
        debug_assert!(
            !matches!(outcome, DeleteOutcome::Dropped),
            "root must never report Dropped"
        );
        if matches!(outcome, DeleteOutcome::NotFound) {
            return Ok(None);
        }
        self.len -= 1;
        // Reinsert orphans (highest level first so inner subtrees are
        // re-attached before the leaf entries that might land under them).
        orphans.sort_by_key(|(lvl, _)| std::cmp::Reverse(*lvl));
        for (lvl, entry) in orphans {
            let mut flags = vec![false; self.height];
            self.run_inserts(vec![(lvl, entry)], &mut flags)?;
        }
        self.shrink_root()?;
        Ok(removed)
    }

    #[allow(clippy::too_many_arguments)]
    fn delete_rec(
        &mut self,
        page: PageId,
        level: usize,
        probe: &M::Key,
        id: u64,
        orphans: &mut Vec<(usize, Entry<M::Key, L>)>,
        removed: &mut Option<L>,
    ) -> io::Result<DeleteOutcome<M::Key>> {
        let (_, mut node) = self.load(page)?;
        match node {
            Node::Leaf(ref mut es) => {
                let Some(pos) = es.iter().position(|e| e.id() == id) else {
                    return Ok(DeleteOutcome::NotFound);
                };
                *removed = Some(es.remove(pos));
                if page != self.root && es.len() < self.min_fill_count(0) {
                    for e in es.drain(..) {
                        orphans.push((0, Entry::Leaf(e)));
                    }
                    self.file.release(page);
                    return Ok(DeleteOutcome::Dropped);
                }
                let key = self.node_key(&node);
                self.store_node(page, 0, &node)?;
                Ok(DeleteOutcome::Kept(key))
            }
            Node::Inner(ref mut es) => {
                let mut hit: Option<usize> = None;
                let mut dropped = false;
                for i in 0..es.len() {
                    if !self
                        .metrics
                        .covers(&es[i].key, probe, self.cfg.covers_tolerance)
                    {
                        continue;
                    }
                    match self.delete_rec(es[i].child, level - 1, probe, id, orphans, removed)? {
                        DeleteOutcome::NotFound => continue,
                        DeleteOutcome::Kept(Some(k)) => {
                            es[i].key = k;
                            hit = Some(i);
                            break;
                        }
                        DeleteOutcome::Kept(None) => {
                            // Only an empty root leaf reports no key, and the
                            // root has no parent — unreachable here.
                            // xlint: allow(panic-freedom) -- invariant: non-root child kept with empty key
                            unreachable!("non-root child kept with empty key")
                        }
                        DeleteOutcome::Dropped => {
                            es.remove(i);
                            dropped = true;
                            hit = Some(i);
                            break;
                        }
                    }
                }
                if hit.is_none() {
                    return Ok(DeleteOutcome::NotFound);
                }
                if dropped && page != self.root && es.len() < self.min_fill_count(level) {
                    for e in es.drain(..) {
                        orphans.push((level, Entry::Inner(e)));
                    }
                    self.file.release(page);
                    return Ok(DeleteOutcome::Dropped);
                }
                let key = self.node_key(&node);
                self.store_node(page, level, &node)?;
                Ok(DeleteOutcome::Kept(key))
            }
        }
    }

    /// Collapses trivial roots after deletions.
    fn shrink_root(&mut self) -> io::Result<()> {
        loop {
            let (level, node) = self.load(self.root)?;
            match node {
                Node::Inner(es) if es.len() == 1 => {
                    let child = es[0].child;
                    self.file.release(self.root);
                    self.root = child;
                    self.height = level; // child level = level - 1 ⇒ height = level
                }
                Node::Inner(es) if es.is_empty() => {
                    // Everything deleted through condensation: reset to an
                    // empty leaf root.
                    self.height = 1;
                    self.store_node(self.root, 0, &Node::Leaf(Vec::new()))?;
                    return Ok(());
                }
                _ => return Ok(()),
            }
        }
    }

    // ---- traversal ------------------------------------------------------

    /// Depth-first traversal. `descend(key, child_level)` decides whether a
    /// subtree is entered; `on_record` sees every reached leaf record.
    /// Returns the number of node pages read — the query's own "node
    /// accesses" count, independent of any other traversal running
    /// concurrently (the shared [`Self::io_stats`] counters still record
    /// every read globally).
    ///
    /// Takes `&self`: traversal never mutates the tree, so any number of
    /// concurrent queries can run over one shared (read-only) tree.
    pub fn visit<FI, FL>(&self, descend: FI, on_record: FL) -> io::Result<u64>
    where
        FI: FnMut(&M::Key, usize) -> bool,
        FL: FnMut(&L),
    {
        self.visit_with(&mut Vec::new(), descend, on_record)
    }

    /// [`Self::visit`] with a caller-provided traversal stack, so per-query
    /// contexts can reuse the allocation across queries (one stack per
    /// worker thread). The stack is cleared on entry.
    pub fn visit_with<FI, FL>(
        &self,
        stack: &mut Vec<(PageId, usize)>,
        mut descend: FI,
        mut on_record: FL,
    ) -> io::Result<u64>
    where
        FI: FnMut(&M::Key, usize) -> bool,
        FL: FnMut(&L),
    {
        stack.clear();
        stack.push((self.root, self.height - 1));
        let mut nodes_read = 0u64;
        while let Some((page, level)) = stack.pop() {
            let (_, node) = self.load(page)?;
            nodes_read += 1;
            match node {
                Node::Leaf(es) => {
                    for r in &es {
                        on_record(r);
                    }
                }
                Node::Inner(es) => {
                    for e in &es {
                        if descend(&e.key, level - 1) {
                            stack.push((e.child, level - 1));
                        }
                    }
                }
            }
        }
        Ok(nodes_read)
    }

    /// Visits every record (uncounted traversal would lie; this one counts).
    pub fn for_each_record<FL: FnMut(&L)>(&self, on_record: FL) -> io::Result<()> {
        self.visit(|_, _| true, on_record).map(|_| ())
    }

    /// Loads **one** node page and streams its contents to the caller:
    /// inner entries as `(key, child_page)` pairs, leaf records by
    /// reference. Returns the node's level (0 = leaf).
    ///
    /// This is the primitive behind best-first traversals: unlike
    /// [`Self::visit_with`] (depth-first, tree-owned stack), the frontier
    /// — priority queue, bounds, stopping rule — lives with the caller,
    /// who decides *when* each child is expanded, not only whether. One
    /// call costs exactly one counted node read; callers charge their own
    /// per-query counters. Entry point for the descent is
    /// [`Self::root_page`].
    pub fn read_node<FI, FL>(
        &self,
        page: PageId,
        mut on_child: FI,
        mut on_record: FL,
    ) -> io::Result<usize>
    where
        FI: FnMut(&M::Key, PageId),
        FL: FnMut(&L),
    {
        let (level, node) = self.load(page)?;
        match node {
            Node::Leaf(es) => {
                for r in &es {
                    on_record(r);
                }
            }
            Node::Inner(es) => {
                for e in &es {
                    on_child(&e.key, e.child);
                }
            }
        }
        Ok(level)
    }

    /// Structure statistics without touching the I/O counters.
    ///
    /// Fallible: the walk peeks every node page through the store, so a
    /// failing backend surfaces as the underlying `io::Error` instead of
    /// a panic (PR-6 fallible-store contract).
    pub fn stats(&self) -> io::Result<TreeStats> {
        let mut stats = TreeStats {
            nodes_per_level: vec![0; self.height],
            entries_per_level: vec![0; self.height],
        };
        let mut stack = vec![(self.root, self.height - 1)];
        let mut bytes = [0u8; PAGE_SIZE];
        while let Some((page, level)) = stack.pop() {
            self.file.peek_into(page, &mut bytes)?;
            let lvl = bytes[0] as usize;
            debug_assert_eq!(lvl, level);
            stats.nodes_per_level[level] += 1;
            if level == 0 {
                stats.entries_per_level[0] += self.codec.decode_leaf(&bytes[1..]).len();
            } else {
                let es = self.codec.decode_inner(&bytes[1..]);
                stats.entries_per_level[level] += es.len();
                for e in &es {
                    stack.push((e.child, level - 1));
                }
            }
        }
        Ok(stats)
    }

    /// Checks the R-tree bounding invariant everywhere (test helper):
    /// every inner entry's key must cover the key of its child node.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut stack = vec![(self.root, self.height - 1)];
        let mut seen = 0usize;
        let mut bytes = [0u8; PAGE_SIZE];
        let mut child_bytes = [0u8; PAGE_SIZE];
        while let Some((page, level)) = stack.pop() {
            self.file
                .peek_into(page, &mut bytes)
                .map_err(|e| format!("page {page} unreadable: {e}"))?;
            let lvl = bytes[0] as usize;
            if lvl != level {
                return Err(format!("page {page} level {lvl}, expected {level}"));
            }
            if level == 0 {
                let es = self.codec.decode_leaf(&bytes[1..]);
                if page != self.root && es.len() < self.min_fill_count(0) {
                    return Err(format!("leaf {page} underfull: {}", es.len()));
                }
                seen += es.len();
            } else {
                let es = self.codec.decode_inner(&bytes[1..]);
                if es.is_empty() || (page != self.root && es.len() < self.min_fill_count(level)) {
                    return Err(format!("inner {page} underfull: {}", es.len()));
                }
                for e in &es {
                    self.file
                        .peek_into(e.child, &mut child_bytes)
                        .map_err(|err| format!("page {} unreadable: {err}", e.child))?;
                    let child_key = if child_bytes[0] == 0 {
                        let ces = self.codec.decode_leaf(&child_bytes[1..]);
                        self.node_key(&Node::Leaf(ces))
                    } else {
                        let ces = self.codec.decode_inner(&child_bytes[1..]);
                        self.node_key(&Node::Inner(ces))
                    };
                    if let Some(ck) = child_key {
                        if !self.metrics.covers(&e.key, &ck, self.cfg.covers_tolerance) {
                            return Err(format!(
                                "entry in {page} does not cover child {}: {:?} !⊇ {:?}",
                                e.child, e.key, ck
                            ));
                        }
                    }
                    stack.push((e.child, level - 1));
                }
            }
        }
        if seen != self.len {
            return Err(format!("len {} but traversal found {seen}", self.len));
        }
        Ok(())
    }
}

/// Node sizes for packing `n` entries into nodes of capacity `cap` at full
/// fan-out. Every node but the last is full; a trailing remainder below
/// `min` is fixed by rebalancing the final two nodes evenly, so every
/// non-root node satisfies the R* minimum fill (`cap ≥ 4` and
/// `min ≤ 0.4·cap` guarantee the even split clears `min` on both sides).
fn pack_sizes(n: usize, cap: usize, min: usize) -> Vec<usize> {
    debug_assert!(n > 0 && cap >= 4 && min <= cap);
    let full = n / cap;
    let rem = n % cap;
    if rem == 0 {
        return vec![cap; full];
    }
    if full == 0 {
        return vec![rem]; // a single (root) node; min fill does not apply
    }
    let mut sizes = vec![cap; full];
    if rem >= min {
        sizes.push(rem);
    } else {
        let total = cap + rem;
        // xlint: allow(panic-freedom) -- invariant: full > 0
        *sizes.last_mut().expect("full > 0") = total / 2;
        sizes.push(total - total / 2);
    }
    sizes
}

/// Removes the elements at `victims` (any order) from `v`, returning them.
fn extract<T>(v: &mut Vec<T>, victims: &[usize]) -> Vec<T> {
    let mut sorted: Vec<usize> = victims.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = Vec::with_capacity(sorted.len());
    for i in sorted {
        out.push(v.swap_remove(i));
    }
    out.reverse();
    out
}

/// Consumes `v`, distributing elements into the two index groups.
fn partition<T>(v: Vec<T>, g1: &[usize], g2: &[usize]) -> (Vec<T>, Vec<T>) {
    debug_assert_eq!(g1.len() + g2.len(), v.len());
    let mut slots: Vec<Option<T>> = v.into_iter().map(Some).collect();
    let take = |slots: &mut Vec<Option<T>>, idxs: &[usize]| {
        idxs.iter()
            // xlint: allow(panic-freedom) -- invariant: index used twice in split
            .map(|&i| slots[i].take().expect("index used twice in split"))
            .collect::<Vec<T>>()
    };
    let a = take(&mut slots, g1);
    let b = take(&mut slots, g2);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_removes_and_returns() {
        let mut v = vec![10, 11, 12, 13, 14];
        let out = extract(&mut v, &[1, 3]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&11) && out.contains(&13));
        assert_eq!(v.len(), 3);
        assert!(v.contains(&10) && v.contains(&12) && v.contains(&14));
    }

    #[test]
    fn partition_splits_ownership() {
        let v = vec!["a", "b", "c", "d"];
        let (x, y) = partition(v, &[2, 0], &[1, 3]);
        assert_eq!(x, vec!["c", "a"]);
        assert_eq!(y, vec!["b", "d"]);
    }

    #[test]
    fn pack_sizes_fill_everything_and_respect_min_fill() {
        for cap in [4usize, 10, 50, 113] {
            let min = ((cap as f64 * 0.4) as usize).max(1);
            for n in 1..=(4 * cap + 3) {
                let sizes = pack_sizes(n, cap, min);
                assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} cap={cap}");
                assert!(sizes.iter().all(|&s| s <= cap), "n={n} cap={cap}");
                if sizes.len() > 1 {
                    assert!(
                        sizes.iter().all(|&s| s >= min),
                        "n={n} cap={cap}: underfull node in {sizes:?}"
                    );
                }
            }
        }
    }
}
