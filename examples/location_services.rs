//! Location-based services: the paper's Figure-1 scenario.
//!
//! Moving clients report a position only when they stray more than a
//! distance threshold from their last report, so the server knows each
//! client up to a circular uncertainty region. The canonical query —
//! "retrieve the objects that are currently in the downtown area with a
//! probability no less than 80%" — is a prob-range query.
//!
//! The whole example is written against [`ProbIndex`], so the U-tree and
//! the sequential-scan baseline run through identical code.
//!
//! ```text
//! cargo run --release --example location_services
//! ```

use utree_repro::prelude::*;

/// Answers one downtown query on any backend (this is the point of the
/// trait: the caller neither knows nor cares which structure runs it).
fn downtown_report<I: ProbIndex<2>>(
    index: &I,
    downtown: Rect<2>,
    pq: f64,
) -> Result<QueryOutcome, QueryError> {
    Query::range(downtown).threshold(pq).run(index)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CLIENTS: usize = 20_000;
    let threshold = 250.0; // report distance threshold = uncertainty radius

    // Last-reported positions follow an urban cluster distribution.
    let objects = datagen::to_uniform_objects(&datagen::lb_points(CLIENTS, 99), threshold);

    let mut tree = UTree::<2>::builder().uniform_catalog(12).build()?;
    let mut scan = SeqScan::<2>::builder().uniform_catalog(12).build()?;
    tree.bulk_load(&objects);
    scan.bulk_load(&objects);
    println!(
        "indexed {CLIENTS} clients (uncertainty radius {threshold}); \
         U-tree: {} pages, {} levels",
        tree.tree_stats()?.total_nodes(),
        tree.tree_stats()?.nodes_per_level.len()
    );

    // Downtown = a 1.5km square around a busy cluster center.
    let downtown_center = objects[17].mbr().center();
    let downtown = Rect::cube(&downtown_center, 1_500.0);

    for pq in [0.8, 0.5, 0.2] {
        let from_tree = downtown_report(&tree, downtown, pq)?;
        let from_scan = downtown_report(&scan, downtown, pq)?;
        assert_eq!(
            from_tree.sorted_ids(),
            from_scan.sorted_ids(),
            "index and scan must agree"
        );
        println!(
            "P >= {:.0}%: {:4} clients | U-tree: {:4} I/Os, {:3} integrations | \
             seq-scan: {:4} I/Os, {:3} integrations",
            pq * 100.0,
            from_tree.len(),
            from_tree.stats.total_io(),
            from_tree.stats.prob_computations,
            from_scan.stats.total_io(),
            from_scan.stats.prob_computations,
        );
    }

    // Rush hour: hundreds of users ask their own "who is near me?"
    // queries at once. Queries only read the index (`&self`), so the
    // batch engine fans them across a worker pool over the *same* tree —
    // no clone, no lock around the index — and returns exactly what a
    // one-at-a-time run would.
    const USERS: usize = 400;
    println!("\nrush hour: {USERS} concurrent user queries through the batch engine…");
    let user_queries: Vec<Query<2>> = (0..USERS)
        .map(|u| {
            let here = objects[(u * 31) % CLIENTS].mbr().center();
            Query::range(Rect::cube(&here, 2_000.0))
                .threshold(0.5 + 0.4 * ((u % 10) as f64 / 10.0))
                // Interactive serving wants cheap exact quadrature, not
                // the paper's 10⁶-sample estimator.
                .refine(Refine::reference(1e-6))
                .build()
        })
        .collect::<Result<_, _>>()?;
    let engine = BatchExecutor::new(4);
    let rush = engine.run(&tree, &user_queries);
    let baseline = BatchExecutor::run_sequential(&tree, &user_queries);
    assert!(
        rush.same_results(&baseline),
        "parallel answers must be byte-identical to sequential"
    );
    println!(
        "{} queries on {} workers: {:.0} queries/s, {} node reads, \
         {} integrations, answers identical to the sequential run",
        rush.len(),
        rush.workers,
        rush.queries_per_sec(),
        rush.stats.node_reads,
        rush.stats.prob_computations,
    );

    // "k nearest risky assets": a hazard area is declared (a flooded
    // district around downtown) and dispatch wants the ten clients MOST
    // LIKELY to be inside it — a ranking question, not a threshold one.
    // The same PCR machinery that filters range queries yields upper
    // probability bounds, so the tree refines only the contenders while
    // the scan has to integrate every client touching the area.
    // Smaller than any client's uncertainty disc, so every probability is
    // genuinely fractional and the ranking order is earned by refinement.
    let hazard = Rect::cube(&downtown_center, 450.0);
    println!("\nk nearest risky assets: top 10 clients by P(inside hazard zone)…");
    let risky = Query::range(hazard)
        .top(10)
        .refine(Refine::reference(1e-6))
        .run(&tree)?;
    let oracle = Query::range(hazard)
        .top(10)
        .refine(Refine::reference(1e-6))
        .run(&scan)?;
    assert_eq!(
        risky.matches, oracle.matches,
        "bounded ranking and the refine-everything scan must agree"
    );
    for (rank, m) in risky.iter().enumerate() {
        println!("  #{:<2} client {:5}  P = {:.3}", rank + 1, m.id, m.p);
    }
    println!(
        "U-tree ranked them with {:3} integrations ({} candidates bounded away); \
         seq-scan needed {:3}",
        risky.stats.prob_computations,
        risky.stats.candidates - risky.stats.prob_computations,
        oracle.stats.prob_computations,
    );

    // Clients move: each new report is a delete + insert.
    println!("\nsimulating 1000 client movements…");
    let moved: Vec<UncertainObject<2>> = objects
        .iter()
        .take(1000)
        .map(|o| {
            let c = o.mbr().center();
            UncertainObject::new(
                o.id,
                ObjectPdf::UniformBall {
                    center: Point::new([c.coords[0] + 400.0, c.coords[1] - 250.0]),
                    radius: threshold,
                },
            )
        })
        .collect();
    for (old, new) in objects.iter().zip(&moved) {
        assert!(tree.delete(old), "client {} must be deletable", old.id);
        tree.insert(new);
    }
    tree.check_invariants().expect("index stays consistent");
    println!(
        "index still holds {} clients and passes invariants",
        tree.len()
    );
    Ok(())
}
