//! Aircraft tracking: the paper's 3D evaluation scenario as an application.
//!
//! 100k (scaled down here) aircraft fly between 2000 airports; the tracker
//! knows each position up to a radius-125 sphere. Queries ask for aircraft
//! inside an airspace box (lat × lon × altitude band) with high confidence
//! — e.g. conflict probing around a storm cell.
//!
//! ```text
//! cargo run --release --example aircraft_tracking
//! ```

use utree_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FLEET: usize = 20_000;
    let objects = datagen::aircraft_dataset(FLEET, 7);

    // Both backends use their paper-default catalogs (U-PCR: m = 10 in 3D).
    let mut tree = UTree::<3>::builder().uniform_catalog(10).build()?;
    let mut upcr = UPcrTree::<3>::builder().build()?;
    tree.bulk_load(&objects);
    upcr.bulk_load(&objects);
    println!(
        "tracking {FLEET} aircraft | U-tree {:.1} MB vs U-PCR {:.1} MB",
        tree.index_size_bytes() as f64 / 1e6,
        upcr.index_size_bytes() as f64 / 1e6,
    );

    // A storm cell: 1500-unit square footprint, altitude band 20%–45%.
    let storm = Rect::new([4_000.0, 4_000.0, 2_000.0], [5_500.0, 5_500.0, 4_500.0]);

    for pq in [0.9, 0.6, 0.3] {
        let from_tree = Query::range(storm).threshold(pq).run(&tree)?;
        let from_upcr = Query::range(storm).threshold(pq).run(&upcr)?;
        assert_eq!(from_tree.sorted_ids(), from_upcr.sorted_ids());
        println!(
            "aircraft in storm cell at ≥{:>2.0}%: {:4} | U-tree {:3} I/Os vs U-PCR {:3} I/Os",
            pq * 100.0,
            from_tree.len(),
            from_tree.stats.total_io(),
            from_upcr.stats.total_io(),
        );
    }

    // Safety margin analysis: everything that could *possibly* be inside
    // (threshold ~0) versus near-certain occupants.
    let possible = Query::range(storm).threshold(0.01).run(&tree)?;
    let certain = Query::range(storm).threshold(0.99).run(&tree)?;
    println!(
        "\nrisk picture: {} possibly inside, {} almost certainly inside",
        possible.len(),
        certain.len()
    );
    Ok(())
}
