//! Aircraft tracking: the paper's 3D evaluation scenario as an application.
//!
//! 100k (scaled down here) aircraft fly between 2000 airports; the tracker
//! knows each position up to a radius-125 sphere. Queries ask for aircraft
//! inside an airspace box (lat × lon × altitude band) with high confidence
//! — e.g. conflict probing around a storm cell.
//!
//! ```text
//! cargo run --release --example aircraft_tracking
//! ```

use utree_repro::prelude::*;

fn main() {
    const FLEET: usize = 20_000;
    let objects = datagen::aircraft_dataset(FLEET, 7);

    let mut tree = UTree::<3>::new(UCatalog::uniform(10));
    let mut upcr = UPcrTree::<3>::new(UCatalog::uniform(10));
    for o in &objects {
        tree.insert(o);
        upcr.insert(o);
    }
    println!(
        "tracking {FLEET} aircraft | U-tree {:.1} MB vs U-PCR {:.1} MB",
        tree.index_size_bytes() as f64 / 1e6,
        upcr.index_size_bytes() as f64 / 1e6,
    );

    // A storm cell: 1500-unit square footprint, altitude band 20%–45%.
    let storm = Rect::new([4_000.0, 4_000.0, 2_000.0], [5_500.0, 5_500.0, 4_500.0]);

    for pq in [0.9, 0.6, 0.3] {
        let q = ProbRangeQuery::new(storm, pq);
        let (ids, s_tree) = tree.query(&q, RefineMode::default());
        let (ids2, s_upcr) = upcr.query(&q, RefineMode::default());
        assert_eq!(sorted(ids.clone()), sorted(ids2));
        println!(
            "aircraft in storm cell at ≥{:>2.0}%: {:4} | U-tree {:3} I/Os vs U-PCR {:3} I/Os",
            pq * 100.0,
            ids.len(),
            s_tree.total_io(),
            s_upcr.total_io(),
        );
    }

    // Safety margin analysis: everything that could *possibly* be inside
    // (threshold ~0) versus near-certain occupants.
    let any = ProbRangeQuery::new(storm, 0.01);
    let sure = ProbRangeQuery::new(storm, 0.99);
    let (possible, _) = tree.query(&any, RefineMode::default());
    let (certain, _) = tree.query(&sure, RefineMode::default());
    println!(
        "\nrisk picture: {} possibly inside, {} almost certainly inside",
        possible.len(),
        certain.len()
    );
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}
