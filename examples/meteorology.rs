//! Meteorology monitoring: the paper's second motivating scenario.
//!
//! Sensors report temperature, humidity and UV index every 30 minutes; the
//! database's snapshot drifts from reality between reports, so each
//! region's current atmosphere is a 3D uncertain object (Gaussian around
//! the last reading — "in the daytime, when the temperature is expected to
//! rise, the mean may be set to some number larger than the measured
//! one"). The paper's query: *"identify the regions whose temperatures are
//! in range [75F, 80F], humidity in [40%, 60%], and UV indexes [4.5, 6]
//! with at least 70% likelihood"*.
//!
//! ```text
//! cargo run --release --example meteorology
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utree_repro::prelude::*;

// Physical ranges mapped onto the normalised [0, 10000] domain per axis.
const TEMP_RANGE: (f64, f64) = (30.0, 110.0); // °F
const HUMID_RANGE: (f64, f64) = (0.0, 100.0); // %
const UV_RANGE: (f64, f64) = (0.0, 12.0);

fn norm(v: f64, (lo, hi): (f64, f64)) -> f64 {
    (v - lo) / (hi - lo) * 10_000.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2024);
    const REGIONS: usize = 5_000;

    // Each monitored region: last readings + drift model. The daytime
    // drift biases the expected temperature upward by ~1.5°F.
    let objects: Vec<UncertainObject<3>> = (0..REGIONS)
        .map(|id| {
            let temp = rng.gen_range(45.0..100.0) + 1.5; // biased mean
            let humid = rng.gen_range(10.0..95.0);
            let uv = rng.gen_range(0.0..10.0);
            UncertainObject::new(
                id as u64,
                ObjectPdf::ConGauBall {
                    center: Point::new([
                        norm(temp, TEMP_RANGE),
                        norm(humid, HUMID_RANGE),
                        norm(uv, UV_RANGE),
                    ]),
                    // 30 minutes of drift: ~2.4°F / 3% / 0.36 UV  (≈300 units)
                    radius: 300.0,
                    sigma: 150.0,
                },
            )
        })
        .collect();

    let mut tree = UTree::<3>::builder().uniform_catalog(10).build()?;
    tree.bulk_load(&objects);
    println!(
        "indexed {REGIONS} regions; index = {:.1} MB over {} pages",
        tree.index_size_bytes() as f64 / 1e6,
        tree.tree_stats()?.total_nodes()
    );

    // The paper's query, verbatim.
    let rq = Rect::new(
        [
            norm(75.0, TEMP_RANGE),
            norm(40.0, HUMID_RANGE),
            norm(4.5, UV_RANGE),
        ],
        [
            norm(80.0, TEMP_RANGE),
            norm(60.0, HUMID_RANGE),
            norm(6.0, UV_RANGE),
        ],
    );
    let outcome = Query::range(rq).threshold(0.7).run(&tree)?;
    println!(
        "regions with T∈[75,80]F, H∈[40,60]%, UV∈[4.5,6] at ≥70% likelihood: {}",
        outcome.len()
    );
    println!(
        "cost: {} node accesses, {} heap pages, {} probability integrations",
        outcome.stats.node_reads, outcome.stats.heap_reads, outcome.stats.prob_computations
    );

    // Threshold sensitivity: how the answer set grows as confidence drops.
    println!("\nthreshold sweep:");
    for pq in [0.9, 0.7, 0.5, 0.3, 0.1] {
        let o = Query::range(rq).threshold(pq).run(&tree)?;
        println!(
            "  P >= {:>3.0}% : {:4} regions ({} integrations, {} validated free)",
            pq * 100.0,
            o.len(),
            o.stats.prob_computations,
            o.stats.validated
        );
    }
    Ok(())
}
