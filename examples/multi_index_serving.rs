//! Multi-index serving: one catalog directory, several named sharded
//! indexes, one resident query service.
//!
//! A location platform rarely has *one* dataset: here a fleet of urban
//! clients and a fleet of long-haul aircraft live as two named indexes
//! in the same [`IndexCatalog`] — sharing one page-file catalog and one
//! write-ahead log, so a single `commit()` lands updates to both indexes
//! atomically and a crash recovers both to the same batch boundary.
//!
//! Each index is hash-sharded across several physical trees
//! ([`ShardedIndex`]); queries scatter across the shards and gather an
//! answer byte-identical to a single tree. The [`QueryService`] then
//! serves a mixed request stream — range queries and top-k rankings,
//! naming either index per request — on a resident worker pool, and
//! reports sustained qps with p50/p99 tail latency.
//!
//! ```text
//! cargo run --release --example multi_index_serving
//! ```

use utree_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("utree-multi-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Build: two named indexes, different shard layouts, one catalog.
    let mut cat = IndexCatalog::<2>::create(&dir, 256)?;
    cat.create_index("clients", UCatalog::uniform(10), TreeConfig::default(), 4)?;
    cat.create_index("aircraft", UCatalog::uniform(10), TreeConfig::default(), 2)?;

    let clients = datagen::to_uniform_objects(&datagen::lb_points(5_000, 99), 250.0);
    let aircraft: Vec<_> = datagen::lb_dataset(1_200, 7)
        .into_iter()
        .enumerate()
        .map(|(i, o)| UncertainObject::new(900_000 + i as u64, o.pdf))
        .collect();
    for o in &clients {
        cat.get_mut("clients").unwrap().insert(o);
    }
    for o in &aircraft {
        cat.get_mut("aircraft").unwrap().insert(o);
    }
    // One durable commit covers BOTH indexes (single WAL marker).
    cat.flush()?;
    for def in cat.defs() {
        println!(
            "index {:?}: {} shards, {} objects",
            def.name,
            def.shard_count,
            cat.get(&def.name).unwrap().len()
        );
    }

    // --- Reopen cold, as a server process would after a restart/crash.
    drop(cat);
    let cat = IndexCatalog::<2>::open(&dir, 256)?;

    // --- A mixed request stream against both indexes.
    let mut requests = Vec::new();
    for i in 0..60 {
        let (name, anchor) = if i % 3 == 0 {
            ("aircraft", aircraft[i * 7 % aircraft.len()].mbr().center())
        } else {
            ("clients", clients[i * 11 % clients.len()].mbr().center())
        };
        let region = Rect::cube(&anchor, 1_200.0);
        if i % 2 == 0 {
            requests.push(ServiceRequest::Range {
                index: name.to_string(),
                query: Query::range(region)
                    .threshold(0.5)
                    .refine(Refine::monte_carlo(10_000, i as u64))
                    .build()?,
            });
        } else {
            requests.push(ServiceRequest::TopK {
                index: name.to_string(),
                query: Query::range(region)
                    .top(5)
                    .refine(Refine::monte_carlo(10_000, i as u64))
                    .build()?,
            });
        }
    }

    let service = QueryService::new(4, 8);
    let (replies, report) = service.serve(&cat, requests);
    let (mut ranges, mut topks) = (0usize, 0usize);
    for reply in &replies {
        match reply {
            ServiceReply::Range(out) => {
                ranges += 1;
                let _ = out.len();
            }
            ServiceReply::TopK(out) => {
                topks += 1;
                let _ = out.matches.len();
            }
            ServiceReply::Error(e) => return Err(e.clone().into()),
        }
    }
    println!(
        "served {} requests ({ranges} range, {topks} top-k) on {} workers",
        report.served,
        service.workers()
    );
    println!(
        "sustained {:.0} queries/s | p50 {:.2} ms | p99 {:.2} ms",
        report.queries_per_sec(),
        report.p50_nanos().unwrap_or(0) as f64 / 1e6,
        report.p99_nanos().unwrap_or(0) as f64 / 1e6,
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
