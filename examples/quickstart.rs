//! Quickstart: index a handful of uncertain objects and run prob-range
//! queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use utree_repro::prelude::*;

fn main() {
    // A U-catalog is the set of probability values at which the index
    // pre-computes its filters. 10 evenly spaced values is a good default.
    let mut tree = UTree::<2>::new(UCatalog::uniform(10));

    // A delivery drone somewhere within 150m of its last report, equally
    // likely anywhere in that disk.
    tree.insert(&UncertainObject::new(
        1,
        ObjectPdf::UniformBall {
            center: Point::new([2_000.0, 3_000.0]),
            radius: 150.0,
        },
    ));

    // A vehicle whose GPS fix is Gaussian around the reported position,
    // truncated to a 200m disk (the paper's Constrained-Gaussian).
    tree.insert(&UncertainObject::new(
        2,
        ObjectPdf::ConGauBall {
            center: Point::new([2_300.0, 3_100.0]),
            radius: 200.0,
            sigma: 100.0,
        },
    ));

    // A sensor whose reading lives in an axis-aligned error box.
    tree.insert(&UncertainObject::new(
        3,
        ObjectPdf::UniformBox {
            rect: Rect::new([5_000.0, 5_000.0], [5_400.0, 5_600.0]),
        },
    ));

    // A truly arbitrary pdf: a histogram leaning toward the north-east.
    tree.insert(&UncertainObject::new(
        4,
        ObjectPdf::Histogram(HistogramPdf::from_fn(
            Rect::new([2_100.0, 2_800.0], [2_500.0, 3_200.0]),
            [16, 16],
            |p| (p.coords[0] - 2_100.0) + (p.coords[1] - 2_800.0) + 50.0,
        )),
    ));

    // "Which objects are in the downtown rectangle with >= 80% probability?"
    let downtown = Rect::new([1_800.0, 2_800.0], [2_600.0, 3_300.0]);
    let query = ProbRangeQuery::new(downtown, 0.8);
    let (ids, stats) = tree.query(&query, RefineMode::default());

    println!("objects in downtown with P >= 80%: {ids:?}");
    println!(
        "cost: {} node accesses, {} probability integrations \
         ({} validated for free, {} pruned for free)",
        stats.node_reads, stats.prob_computations, stats.validated, stats.pruned
    );

    // Lower the bar to 20% — more objects qualify.
    let relaxed = ProbRangeQuery::new(downtown, 0.2);
    let (ids, _) = tree.query(&relaxed, RefineMode::default());
    println!("objects in downtown with P >= 20%: {ids:?}");

    // The index is fully dynamic: objects can leave.
    let gone = UncertainObject::new(
        1,
        ObjectPdf::UniformBall {
            center: Point::new([2_000.0, 3_000.0]),
            radius: 150.0,
        },
    );
    assert!(tree.delete(&gone));
    let (ids, _) = tree.query(&relaxed, RefineMode::default());
    println!("after drone 1 left: {ids:?}");
}
