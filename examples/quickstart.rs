//! Quickstart: index a handful of uncertain objects and run prob-range
//! queries through the fluent API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use utree_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A U-catalog is the set of probability values at which the index
    // pre-computes its filters. 10 evenly spaced values is a good default;
    // invalid catalogs surface as typed errors instead of panics.
    let mut tree = UTree::<2>::builder()
        .catalog(UCatalog::uniform(10))
        .build()?;

    // A delivery drone somewhere within 150m of its last report, equally
    // likely anywhere in that disk; a vehicle with a truncated-Gaussian
    // GPS fix; a sensor reading in an error box; and a truly arbitrary
    // histogram pdf leaning north-east.
    let objects = vec![
        UncertainObject::new(
            1,
            ObjectPdf::UniformBall {
                center: Point::new([2_000.0, 3_000.0]),
                radius: 150.0,
            },
        ),
        UncertainObject::new(
            2,
            ObjectPdf::ConGauBall {
                center: Point::new([2_300.0, 3_100.0]),
                radius: 200.0,
                sigma: 100.0,
            },
        ),
        UncertainObject::new(
            3,
            ObjectPdf::UniformBox {
                rect: Rect::new([5_000.0, 5_000.0], [5_400.0, 5_600.0]),
            },
        ),
        UncertainObject::new(
            4,
            ObjectPdf::Histogram(HistogramPdf::from_fn(
                Rect::new([2_100.0, 2_800.0], [2_500.0, 3_200.0]),
                [16, 16],
                |p| (p.coords[0] - 2_100.0) + (p.coords[1] - 2_800.0) + 50.0,
            )),
        ),
    ];
    let load = tree.bulk_load(&objects);
    println!(
        "indexed {} objects ({} page writes, {:.1} µs of Simplex CFB fitting)",
        tree.len(),
        load.io_writes,
        load.lp_nanos as f64 / 1e3
    );

    // "Which objects are in the downtown rectangle with >= 80% probability?"
    let downtown = Rect::new([1_800.0, 2_800.0], [2_600.0, 3_300.0]);
    let outcome = Query::range(downtown).threshold(0.8).run(&tree)?;

    println!("\nobjects in downtown with P >= 80%:");
    for m in &outcome {
        match m.provenance {
            Provenance::Validated => {
                println!("  #{:<3} certified by the filter, no integration", m.id)
            }
            Provenance::Refined { p } => println!("  #{:<3} refined: P = {p:.3}", m.id),
        }
    }
    println!(
        "cost: {} node accesses, {} probability integrations \
         ({} validated for free, {} pruned for free)",
        outcome.stats.node_reads,
        outcome.stats.prob_computations,
        outcome.stats.validated,
        outcome.stats.pruned
    );

    // Lower the bar to 20% — more objects qualify.
    let relaxed = Query::range(downtown).threshold(0.2).run(&tree)?;
    println!("\nobjects in downtown with P >= 20%: {:?}", relaxed.ids());

    // The index is fully dynamic: objects can leave.
    assert!(tree.delete(&objects[0]));
    let after = Query::range(downtown).threshold(0.2).run(&tree)?;
    println!("after drone 1 left: {:?}", after.ids());
    Ok(())
}
