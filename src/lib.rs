//! # utree-repro
//!
//! Umbrella crate of the reproduction of *"Indexing Multi-Dimensional
//! Uncertain Data with Arbitrary Probability Density Functions"* (Tao,
//! Cheng, Xiao, Ngai, Kao, Prabhakar — VLDB 2005).
//!
//! Re-exports the whole stack under one roof:
//!
//! * [`geom`] — d-dimensional geometry;
//! * [`pdf`] — pdf models, marginal CDFs, appearance probability;
//! * [`lp`] — the Simplex solver behind CFB fitting;
//! * [`store`] — paged storage behind the [`store::PageStore`] trait:
//!   in-memory page file, durable disk file, LRU buffer pool;
//! * [`rstar`] — the generic R*-tree machinery and the precise-data
//!   baseline;
//! * [`index`] — the paper's structures behind one trait
//!   ([`index::ProbIndex`]): [`index::UTree`], [`index::UPcrTree`],
//!   [`index::SeqScan`];
//! * [`data`] — the LB/CA/Aircraft dataset generators and workloads.
//!
//! ## The API in one example
//!
//! Indexes are built with the shared fluent builder, loaded in bulk, and
//! queried with the [`prelude::Query`] builder; results carry per-object
//! provenance and the paper's cost counters:
//!
//! ```
//! use utree_repro::prelude::*;
//!
//! let mut tree = UTree::<2>::builder()
//!     .catalog(UCatalog::uniform(10))
//!     .build()?;
//! tree.bulk_load(datagen::lb_dataset(200, 42));
//!
//! let outcome = Query::range(Rect::new([2000.0, 2000.0], [4000.0, 4000.0]))
//!     .threshold(0.7)
//!     .refine(Refine::monte_carlo(100_000, 7))
//!     .run(&tree)?;
//!
//! println!(
//!     "{} results ({} validated for free), {} node accesses",
//!     outcome.len(),
//!     outcome.validated_count(),
//!     outcome.stats.node_reads
//! );
//! for m in &outcome {
//!     match m.provenance {
//!         Provenance::Validated => println!("object {} (certified by the filter)", m.id),
//!         Provenance::Refined { p } => println!("object {} (P = {p:.3})", m.id),
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same code runs against [`prelude::UPcrTree`] or
//! [`prelude::SeqScan`] — or any `&dyn ProbIndex<D>` — unchanged, and
//! against any storage backend: `tree.save(dir)?` persists an index that
//! [`prelude::DiskUTree`]`::open(dir, frames)?` reopens cold from disk
//! through a bounded LRU buffer pool, answering byte-identically. Disk
//! trees write ahead: `commit()` journals each update batch to a
//! CRC-framed log before any page reaches the backing file, `open`
//! replays committed batches after a crash, and `checkpoint()` folds the
//! log back into the snapshot. In-memory serving gets the same
//! readers-during-writes story from [`prelude::EpochIndex`], which
//! publishes copy-on-write epochs that concurrent readers hold while a
//! writer commits the next one. See `docs/API.md` for the
//! storage-backend and durability guides and the migration table from
//! the 0.1 tuple API.

pub use datagen as data;
pub use page_store as store;
pub use rstar_base as rstar;
pub use simplex_lp as lp;
pub use uncertain_geom as geom;
pub use uncertain_pdf as pdf;
pub use utree as index;

/// One-stop imports for applications.
pub mod prelude {
    pub use datagen;
    pub use page_store::{
        BufferPool, CommitReceipt, DiskPageFile, FaultMode, FaultStore, PageFile, PageStore,
        ShadowPageFile, WalStore,
    };
    pub use rstar_base::TreeConfig;
    pub use uncertain_geom::{Point, Rect};
    pub use uncertain_pdf::{HistogramPdf, ObjectPdf, Region, UncertainObject};
    pub use utree::{canonicalize, shard_of};
    pub use utree::{
        BatchExecutor, BatchOutcome, DiskUPcrTree, DiskUTree, EpochIndex, EpochSnapshot,
        FilterOutcome, IndexBuilder, IndexCatalog, IndexDef, IndexError, InsertStats, Match,
        ProbIndex, ProbRangeQuery, Provenance, Query, QueryBuilder, QueryCtx, QueryError,
        QueryOptions, QueryOutcome, QueryService, QueryStats, RankBatchOutcome, RankOutcome,
        RankQuery, RankedMatch, Refine, RefineMode, SeqScan, ServiceReply, ServiceReport,
        ServiceRequest, ShardedIndex, UCatalog, UPcrTree, UTree,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_builds_and_queries() {
        let mut tree = UTree::<2>::builder()
            .uniform_catalog(6)
            .build()
            .expect("valid catalog");
        let load = tree.bulk_load(datagen::lb_dataset(100, 7));
        assert!(load.io_writes > 0, "bulk load must write pages");
        let outcome = Query::range(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]))
            .threshold(0.5)
            .refine(Refine::reference(1e-6))
            .run(&tree)
            .expect("valid query");
        assert_eq!(
            outcome.len(),
            100,
            "domain-spanning query returns everything"
        );
        assert_eq!(
            outcome.len(),
            outcome.validated_count() + outcome.refined_count()
        );
    }
}
