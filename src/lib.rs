//! # utree-repro
//!
//! Umbrella crate of the reproduction of *"Indexing Multi-Dimensional
//! Uncertain Data with Arbitrary Probability Density Functions"* (Tao,
//! Cheng, Xiao, Ngai, Kao, Prabhakar — VLDB 2005).
//!
//! Re-exports the whole stack under one roof:
//!
//! * [`geom`] — d-dimensional geometry;
//! * [`pdf`] — pdf models, marginal CDFs, appearance probability;
//! * [`lp`] — the Simplex solver behind CFB fitting;
//! * [`store`] — paged storage with I/O accounting;
//! * [`rstar`] — the generic R*-tree machinery and the precise-data
//!   baseline;
//! * [`index`] — the paper's structures: [`index::UTree`],
//!   [`index::UPcrTree`], [`index::SeqScan`];
//! * [`data`] — the LB/CA/Aircraft dataset generators and workloads.
//!
//! ```
//! use utree_repro::prelude::*;
//!
//! let mut tree = UTree::<2>::new(UCatalog::uniform(10));
//! for object in datagen::lb_dataset(200, 42) {
//!     tree.insert(&object);
//! }
//! let query = ProbRangeQuery::new(Rect::new([2000.0, 2000.0], [4000.0, 4000.0]), 0.7);
//! let (ids, stats) = tree.query(&query, RefineMode::default());
//! println!("{} results, {} node accesses", ids.len(), stats.node_reads);
//! ```

pub use datagen as data;
pub use page_store as store;
pub use rstar_base as rstar;
pub use simplex_lp as lp;
pub use uncertain_geom as geom;
pub use uncertain_pdf as pdf;
pub use utree as index;

/// One-stop imports for applications.
pub mod prelude {
    pub use datagen;
    pub use uncertain_geom::{Point, Rect};
    pub use uncertain_pdf::{HistogramPdf, ObjectPdf, Region, UncertainObject};
    pub use utree::{
        FilterOutcome, ProbRangeQuery, QueryStats, RefineMode, SeqScan, UCatalog, UPcrTree, UTree,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_builds_and_queries() {
        let mut tree = UTree::<2>::new(UCatalog::uniform(6));
        let objs = datagen::lb_dataset(100, 7);
        for o in &objs {
            tree.insert(o);
        }
        let q = ProbRangeQuery::new(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]), 0.5);
        let (ids, _) = tree.query(&q, RefineMode::Reference { tol: 1e-6 });
        assert_eq!(ids.len(), 100, "domain-spanning query returns everything");
    }
}
