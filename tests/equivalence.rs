//! Cross-crate integration: the three query engines (U-tree, U-PCR,
//! sequential scan) must return identical result sets, and those results
//! must match brute-force ground truth — through inserts, deletes and
//! mixed pdf types.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utree_repro::prelude::*;

/// Builds a mixed-pdf dataset exercising every model the library ships.
fn mixed_dataset(n: usize, seed: u64) -> Vec<UncertainObject<2>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let cx = rng.gen_range(500.0..9_500.0);
            let cy = rng.gen_range(500.0..9_500.0);
            let pdf = match id % 4 {
                0 => ObjectPdf::UniformBall {
                    center: Point::new([cx, cy]),
                    radius: rng.gen_range(50.0..250.0),
                },
                1 => ObjectPdf::ConGauBall {
                    center: Point::new([cx, cy]),
                    radius: 250.0,
                    sigma: 125.0,
                },
                2 => {
                    let w = rng.gen_range(100.0..400.0);
                    let h = rng.gen_range(100.0..400.0);
                    ObjectPdf::UniformBox {
                        rect: Rect::new([cx - w / 2.0, cy - h / 2.0], [cx + w / 2.0, cy + h / 2.0]),
                    }
                }
                _ => {
                    let half = rng.gen_range(80.0..200.0);
                    ObjectPdf::Histogram(HistogramPdf::from_fn(
                        Rect::new([cx - half, cy - half], [cx + half, cy + half]),
                        [8, 8],
                        |p| 1.0 + (p.coords[0] * 0.01).sin().abs(),
                    ))
                }
            };
            UncertainObject::new(id as u64, pdf)
        })
        .collect()
}

fn ground_truth(
    objs: &[UncertainObject<2>],
    rq: &Rect<2>,
    pq: f64,
) -> (Vec<u64>, Vec<u64>) {
    let mut expect = Vec::new();
    let mut boundary = Vec::new();
    for o in objs {
        let p = utree_repro::pdf::appearance_reference(&o.pdf, rq, 1e-9);
        if (p - pq).abs() < 2e-4 {
            boundary.push(o.id); // too close to call under numeric noise
        } else if p >= pq {
            expect.push(o.id);
        }
    }
    (expect, boundary)
}

fn clean(mut ids: Vec<u64>, boundary: &[u64]) -> Vec<u64> {
    ids.retain(|id| !boundary.contains(id));
    ids.sort_unstable();
    ids
}

#[test]
fn all_engines_agree_with_ground_truth() {
    let objs = mixed_dataset(400, 2024);
    let mut tree = UTree::new(UCatalog::uniform(12));
    let mut upcr = UPcrTree::new(UCatalog::uniform(9));
    let mut scan = SeqScan::new(UCatalog::uniform(12));
    for o in &objs {
        tree.insert(o);
        upcr.insert(o);
        scan.insert(o);
    }
    tree.check_invariants().unwrap();
    upcr.check_invariants().unwrap();

    let mut rng = SmallRng::seed_from_u64(7);
    for round in 0..25 {
        let c = Point::new([
            rng.gen_range(1_000.0..9_000.0),
            rng.gen_range(1_000.0..9_000.0),
        ]);
        let rq = Rect::cube(&c, rng.gen_range(300.0..2_500.0));
        let pq = rng.gen_range(0.05..0.95);
        let q = ProbRangeQuery::new(rq, pq);
        let mode = RefineMode::Reference { tol: 1e-9 };

        let (t_ids, _) = tree.query(&q, mode);
        let (p_ids, _) = upcr.query(&q, mode);
        let (s_ids, _) = scan.query(&q, mode);
        let (expect, boundary) = ground_truth(&objs, &rq, pq);
        let expect = clean(expect, &boundary);

        assert_eq!(clean(t_ids, &boundary), expect, "U-tree, round {round}");
        assert_eq!(clean(p_ids, &boundary), expect, "U-PCR, round {round}");
        assert_eq!(clean(s_ids, &boundary), expect, "SeqScan, round {round}");
    }
}

#[test]
fn agreement_survives_interleaved_deletes() {
    let objs = mixed_dataset(300, 555);
    let mut tree = UTree::new(UCatalog::uniform(10));
    let mut upcr = UPcrTree::new(UCatalog::uniform(10));
    for o in &objs {
        tree.insert(o);
        upcr.insert(o);
    }

    let mut rng = SmallRng::seed_from_u64(99);
    let mut alive: Vec<UncertainObject<2>> = objs.clone();
    for round in 0..5 {
        // Delete a random third of the survivors.
        let mut keep = Vec::new();
        for o in alive.drain(..) {
            if rng.gen_bool(1.0 / 3.0) {
                assert!(tree.delete(&o), "U-tree delete {} r{round}", o.id);
                assert!(upcr.delete(&o), "U-PCR delete {} r{round}", o.id);
            } else {
                keep.push(o);
            }
        }
        alive = keep;
        tree.check_invariants().unwrap();
        upcr.check_invariants().unwrap();

        let rq = Rect::cube(
            &Point::new([
                rng.gen_range(2_000.0..8_000.0),
                rng.gen_range(2_000.0..8_000.0),
            ]),
            1_800.0,
        );
        let pq = rng.gen_range(0.1..0.9);
        let q = ProbRangeQuery::new(rq, pq);
        let mode = RefineMode::Reference { tol: 1e-9 };
        let (t_ids, _) = tree.query(&q, mode);
        let (p_ids, _) = upcr.query(&q, mode);
        let (expect, boundary) = ground_truth(&alive, &rq, pq);
        let expect = clean(expect, &boundary);
        assert_eq!(clean(t_ids, &boundary), expect, "U-tree after deletes r{round}");
        assert_eq!(clean(p_ids, &boundary), expect, "U-PCR after deletes r{round}");
    }
}

#[test]
fn monte_carlo_refinement_matches_reference_off_boundary() {
    // With queries whose qualifying objects sit well away from the
    // threshold, MC refinement (the paper's estimator) and quadrature must
    // produce the same result sets.
    let objs = mixed_dataset(150, 31);
    let mut tree = UTree::new(UCatalog::uniform(10));
    for o in &objs {
        tree.insert(o);
    }
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..8 {
        let rq = Rect::cube(
            &Point::new([
                rng.gen_range(2_000.0..8_000.0),
                rng.gen_range(2_000.0..8_000.0),
            ]),
            2_000.0,
        );
        let q = ProbRangeQuery::new(rq, 0.5);
        let (ref_ids, _) = tree.query(&q, RefineMode::Reference { tol: 1e-9 });
        let (mc_ids, _) = tree.query(
            &q,
            RefineMode::MonteCarlo {
                n1: 100_000,
                seed: 1,
            },
        );
        // Objects with P within MC noise of 0.5 may differ; exclude them.
        let noisy: Vec<u64> = objs
            .iter()
            .filter(|o| {
                let p = utree_repro::pdf::appearance_reference(&o.pdf, &rq, 1e-9);
                (p - 0.5).abs() < 0.02
            })
            .map(|o| o.id)
            .collect();
        assert_eq!(clean(ref_ids, &noisy), clean(mc_ids, &noisy));
    }
}

#[test]
fn three_dimensional_engines_agree() {
    let objs = datagen::aircraft_dataset(400, 17);
    let mut tree = UTree::<3>::new(UCatalog::uniform(10));
    let mut upcr = UPcrTree::<3>::new(UCatalog::uniform(10));
    for o in &objs {
        tree.insert(o);
        upcr.insert(o);
    }
    let mut rng = SmallRng::seed_from_u64(41);
    for _ in 0..10 {
        let c = Point::new([
            rng.gen_range(2_000.0..8_000.0),
            rng.gen_range(2_000.0..8_000.0),
            rng.gen_range(2_000.0..8_000.0),
        ]);
        let q = ProbRangeQuery::new(Rect::cube(&c, 1_500.0), rng.gen_range(0.1..0.9));
        let mode = RefineMode::Reference { tol: 1e-7 };
        let (a, _) = tree.query(&q, mode);
        let (b, _) = upcr.query(&q, mode);
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
