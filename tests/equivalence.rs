//! Cross-crate integration: the three query engines (U-tree, U-PCR,
//! sequential scan) must return identical result sets, and those results
//! must match brute-force ground truth — through inserts, deletes and
//! mixed pdf types.
//!
//! The three-way comparison runs *generically over [`ProbIndex`]*: one
//! function drives every backend, which is the API contract this crate
//! promises.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utree_repro::prelude::*;

/// Builds a mixed-pdf dataset exercising every model the library ships.
fn mixed_dataset(n: usize, seed: u64) -> Vec<UncertainObject<2>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let cx = rng.gen_range(500.0..9_500.0);
            let cy = rng.gen_range(500.0..9_500.0);
            let pdf = match id % 4 {
                0 => ObjectPdf::UniformBall {
                    center: Point::new([cx, cy]),
                    radius: rng.gen_range(50.0..250.0),
                },
                1 => ObjectPdf::ConGauBall {
                    center: Point::new([cx, cy]),
                    radius: 250.0,
                    sigma: 125.0,
                },
                2 => {
                    let w = rng.gen_range(100.0..400.0);
                    let h = rng.gen_range(100.0..400.0);
                    ObjectPdf::UniformBox {
                        rect: Rect::new([cx - w / 2.0, cy - h / 2.0], [cx + w / 2.0, cy + h / 2.0]),
                    }
                }
                _ => {
                    let half = rng.gen_range(80.0..200.0);
                    ObjectPdf::Histogram(HistogramPdf::from_fn(
                        Rect::new([cx - half, cy - half], [cx + half, cy + half]),
                        [8, 8],
                        |p| 1.0 + (p.coords[0] * 0.01).sin().abs(),
                    ))
                }
            };
            UncertainObject::new(id as u64, pdf)
        })
        .collect()
}

fn ground_truth(objs: &[UncertainObject<2>], rq: &Rect<2>, pq: f64) -> (Vec<u64>, Vec<u64>) {
    let mut expect = Vec::new();
    let mut boundary = Vec::new();
    for o in objs {
        let p = utree_repro::pdf::appearance_reference(&o.pdf, rq, 1e-9);
        if (p - pq).abs() < 2e-4 {
            boundary.push(o.id); // too close to call under numeric noise
        } else if p >= pq {
            expect.push(o.id);
        }
    }
    (expect, boundary)
}

fn clean(mut ids: Vec<u64>, boundary: &[u64]) -> Vec<u64> {
    ids.retain(|id| !boundary.contains(id));
    ids.sort_unstable();
    ids
}

/// Executes one query on any backend and checks the outcome's internal
/// consistency: provenance counts must reconcile with the stat counters,
/// and the filter-step counters must add up.
fn run_checked<I: ProbIndex<2>>(index: &I, q: &QueryBuilder<2>) -> QueryOutcome {
    let outcome = q.run(index).expect("workload queries are valid");
    let s = &outcome.stats;
    assert_eq!(
        s.results as usize,
        outcome.len(),
        "stats.results must equal the number of matches"
    );
    assert_eq!(
        outcome.len(),
        outcome.validated_count() + outcome.refined_count(),
        "every match is either validated or refined"
    );
    assert_eq!(
        s.validated as usize,
        outcome.validated_count(),
        "validated counter must match provenance"
    );
    assert_eq!(
        s.pruned + s.validated + s.candidates,
        s.visited,
        "every inspected leaf entry is pruned, validated or a candidate"
    );
    assert!(
        s.prob_computations >= outcome.refined_count() as u64,
        "every refined match costs at least one probability computation"
    );
    // Refined matches must report probabilities at or above the threshold.
    for m in &outcome {
        if let Provenance::Refined { p } = m.provenance {
            assert!(
                p >= q.build().unwrap().threshold(),
                "refined match {m:?} below threshold"
            );
        }
    }
    outcome
}

/// The ISSUE's trait-level three-way equivalence: one seeded workload,
/// three backends behind the same generic function, identical answers and
/// sane stat invariants everywhere.
#[test]
fn three_backends_agree_generically() {
    let objs = mixed_dataset(350, 4711);
    let mut tree = UTree::<2>::builder().uniform_catalog(12).build().unwrap();
    let mut upcr = UPcrTree::<2>::builder().uniform_catalog(9).build().unwrap();
    let mut scan = SeqScan::<2>::builder().uniform_catalog(12).build().unwrap();
    // Load through the trait as well.
    fn load<I: ProbIndex<2>>(index: &mut I, objs: &[UncertainObject<2>]) {
        index.bulk_load(objs);
        assert_eq!(index.len(), objs.len());
    }
    load(&mut tree, &objs);
    load(&mut upcr, &objs);
    load(&mut scan, &objs);

    let mut rng = SmallRng::seed_from_u64(99);
    for round in 0..15 {
        let c = Point::new([
            rng.gen_range(1_000.0..9_000.0),
            rng.gen_range(1_000.0..9_000.0),
        ]);
        let q = Query::range(Rect::cube(&c, rng.gen_range(300.0..2_500.0)))
            .threshold(rng.gen_range(0.05..0.95))
            .refine(Refine::reference(1e-9));
        let a = run_checked(&tree, &q).sorted_ids();
        let b = run_checked(&upcr, &q).sorted_ids();
        let s = run_checked(&scan, &q).sorted_ids();
        assert_eq!(a, b, "U-tree vs U-PCR, round {round}");
        assert_eq!(a, s, "U-tree vs SeqScan, round {round}");
    }
}

#[test]
fn all_engines_agree_with_ground_truth() {
    let objs = mixed_dataset(400, 2024);
    let mut tree = UTree::<2>::builder().uniform_catalog(12).build().unwrap();
    let mut upcr = UPcrTree::<2>::builder().uniform_catalog(9).build().unwrap();
    let mut scan = SeqScan::<2>::builder().uniform_catalog(12).build().unwrap();
    tree.bulk_load(&objs);
    upcr.bulk_load(&objs);
    scan.bulk_load(&objs);
    tree.check_invariants().unwrap();
    upcr.check_invariants().unwrap();

    let mut rng = SmallRng::seed_from_u64(7);
    for round in 0..25 {
        let c = Point::new([
            rng.gen_range(1_000.0..9_000.0),
            rng.gen_range(1_000.0..9_000.0),
        ]);
        let rq = Rect::cube(&c, rng.gen_range(300.0..2_500.0));
        let pq = rng.gen_range(0.05..0.95);
        let q = Query::range(rq)
            .threshold(pq)
            .refine(Refine::reference(1e-9));

        let t_ids = q.run(&tree).unwrap().ids();
        let p_ids = q.run(&upcr).unwrap().ids();
        let s_ids = q.run(&scan).unwrap().ids();
        let (expect, boundary) = ground_truth(&objs, &rq, pq);
        let expect = clean(expect, &boundary);

        assert_eq!(clean(t_ids, &boundary), expect, "U-tree, round {round}");
        assert_eq!(clean(p_ids, &boundary), expect, "U-PCR, round {round}");
        assert_eq!(clean(s_ids, &boundary), expect, "SeqScan, round {round}");
    }
}

#[test]
fn agreement_survives_interleaved_deletes() {
    let objs = mixed_dataset(300, 555);
    let mut tree = UTree::<2>::builder().uniform_catalog(10).build().unwrap();
    let mut upcr = UPcrTree::<2>::builder()
        .uniform_catalog(10)
        .build()
        .unwrap();
    tree.bulk_load(&objs);
    upcr.bulk_load(&objs);

    let mut rng = SmallRng::seed_from_u64(99);
    let mut alive: Vec<UncertainObject<2>> = objs.clone();
    for round in 0..5 {
        // Delete a random third of the survivors.
        let mut keep = Vec::new();
        for o in alive.drain(..) {
            if rng.gen_bool(1.0 / 3.0) {
                assert!(tree.delete(&o), "U-tree delete {} r{round}", o.id);
                assert!(upcr.delete(&o), "U-PCR delete {} r{round}", o.id);
            } else {
                keep.push(o);
            }
        }
        alive = keep;
        tree.check_invariants().unwrap();
        upcr.check_invariants().unwrap();

        let rq = Rect::cube(
            &Point::new([
                rng.gen_range(2_000.0..8_000.0),
                rng.gen_range(2_000.0..8_000.0),
            ]),
            1_800.0,
        );
        let pq = rng.gen_range(0.1..0.9);
        let q = Query::range(rq)
            .threshold(pq)
            .refine(Refine::reference(1e-9));
        let t_ids = q.run(&tree).unwrap().ids();
        let p_ids = q.run(&upcr).unwrap().ids();
        let (expect, boundary) = ground_truth(&alive, &rq, pq);
        let expect = clean(expect, &boundary);
        assert_eq!(
            clean(t_ids, &boundary),
            expect,
            "U-tree after deletes r{round}"
        );
        assert_eq!(
            clean(p_ids, &boundary),
            expect,
            "U-PCR after deletes r{round}"
        );
    }
}

#[test]
fn monte_carlo_refinement_matches_reference_off_boundary() {
    // With queries whose qualifying objects sit well away from the
    // threshold, MC refinement (the paper's estimator) and quadrature must
    // produce the same result sets.
    let objs = mixed_dataset(150, 31);
    let mut tree = UTree::<2>::builder().uniform_catalog(10).build().unwrap();
    tree.bulk_load(&objs);
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..8 {
        let rq = Rect::cube(
            &Point::new([
                rng.gen_range(2_000.0..8_000.0),
                rng.gen_range(2_000.0..8_000.0),
            ]),
            2_000.0,
        );
        let ref_ids = Query::range(rq)
            .threshold(0.5)
            .refine(Refine::reference(1e-9))
            .run(&tree)
            .unwrap()
            .ids();
        let mc_ids = Query::range(rq)
            .threshold(0.5)
            .refine(Refine::monte_carlo(100_000, 1))
            .run(&tree)
            .unwrap()
            .ids();
        // Objects with P within MC noise of 0.5 may differ; exclude them.
        let noisy: Vec<u64> = objs
            .iter()
            .filter(|o| {
                let p = utree_repro::pdf::appearance_reference(&o.pdf, &rq, 1e-9);
                (p - 0.5).abs() < 0.02
            })
            .map(|o| o.id)
            .collect();
        assert_eq!(clean(ref_ids, &noisy), clean(mc_ids, &noisy));
    }
}

#[test]
fn three_dimensional_engines_agree() {
    let objs = datagen::aircraft_dataset(400, 17);
    let mut tree = UTree::<3>::builder().uniform_catalog(10).build().unwrap();
    let mut upcr = UPcrTree::<3>::builder()
        .uniform_catalog(10)
        .build()
        .unwrap();
    tree.bulk_load(&objs);
    upcr.bulk_load(&objs);
    let mut rng = SmallRng::seed_from_u64(41);
    for _ in 0..10 {
        let c = Point::new([
            rng.gen_range(2_000.0..8_000.0),
            rng.gen_range(2_000.0..8_000.0),
            rng.gen_range(2_000.0..8_000.0),
        ]);
        let q = Query::range(Rect::cube(&c, 1_500.0))
            .threshold(rng.gen_range(0.1..0.9))
            .refine(Refine::reference(1e-7));
        let a = q.run(&tree).unwrap().sorted_ids();
        let b = q.run(&upcr).unwrap().sorted_ids();
        assert_eq!(a, b);
    }
}
