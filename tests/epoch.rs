//! Epoch-swap serving: readers hold a published epoch and keep getting
//! byte-identical answers while a writer commits new epochs next to them.

use utree_repro::prelude::*;

const BASE_N: usize = 300;

fn base_objects() -> Vec<UncertainObject<2>> {
    datagen::lb_dataset(BASE_N, 5)
}

fn loaded_index(objs: &[UncertainObject<2>]) -> EpochIndex<2> {
    let index = EpochIndex::<2>::new(UCatalog::uniform(8));
    index.commit_with(|t| t.bulk_load(objs));
    index
}

fn probe_queries() -> Vec<Query<2>> {
    let mode = Refine::reference(1e-6);
    vec![
        Query::range(Rect::new([1000.0, 1000.0], [5000.0, 5000.0]))
            .threshold(0.5)
            .refine(mode)
            .build()
            .unwrap(),
        Query::range(Rect::new([4000.0, 4000.0], [9500.0, 9500.0]))
            .threshold(0.25)
            .refine(mode)
            .build()
            .unwrap(),
    ]
}

/// The acceptance property: readers pinned to the old epoch answer
/// byte-identically, query after query, while a writer commits ten new
/// epochs — and fresh snapshots only ever observe whole batches.
#[test]
fn old_epoch_readers_are_unperturbed_by_concurrent_commits() {
    let objs = base_objects();
    let index = loaded_index(&objs);
    let queries = probe_queries();

    let old = index.snapshot();
    let baseline: Vec<QueryOutcome> = queries.iter().map(|q| old.execute(q)).collect();
    let epoch_before = index.epoch();

    const WRITER_BATCHES: usize = 10;
    const BATCH: usize = 6;
    let extra = datagen::lb_dataset(WRITER_BATCHES * BATCH, 7);

    std::thread::scope(|scope| {
        // The writer commits ten batches as fast as it can.
        scope.spawn(|| {
            for b in 0..WRITER_BATCHES {
                let batch: Vec<_> = extra[b * BATCH..(b + 1) * BATCH]
                    .iter()
                    .enumerate()
                    .map(|(i, o)| {
                        UncertainObject::new(80_000 + (b * BATCH + i) as u64, o.pdf.clone())
                    })
                    .collect();
                index.insert_batch(&batch);
            }
        });
        // Pinned readers re-run the workload against the old epoch the
        // whole time; any drift from the pre-commit baseline is a failure.
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..15 {
                    for (q, want) in queries.iter().zip(&baseline) {
                        let got = old.execute(q);
                        assert_eq!(got.matches, want.matches);
                        assert_eq!(got.stats.node_reads, want.stats.node_reads);
                    }
                }
            });
        }
        // A roaming reader takes fresh snapshots: each must be a whole
        // number of committed batches, never a torn prefix.
        scope.spawn(|| {
            for _ in 0..40 {
                let snap = index.snapshot();
                let extra_objs = snap.len() - BASE_N;
                assert_eq!(
                    extra_objs % BATCH,
                    0,
                    "snapshot exposes a partially applied batch"
                );
            }
        });
    });

    assert_eq!(index.len(), BASE_N + WRITER_BATCHES * BATCH);
    assert_eq!(index.epoch(), epoch_before + WRITER_BATCHES as u64);
    // The pinned epoch still answers as of its publication.
    assert_eq!(old.len(), BASE_N);
    for (q, want) in queries.iter().zip(&baseline) {
        assert_eq!(old.execute(q).matches, want.matches);
    }
}

/// Epoch snapshots are plain `&UTree`s: the parallel batch engine runs on
/// them unchanged, with byte-identical results to a sequential pass —
/// even when commits land mid-run.
#[test]
fn snapshots_compose_with_the_batch_executor() {
    let objs = base_objects();
    let index = loaded_index(&objs);
    let queries: Vec<Query<2>> = {
        let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
        datagen::workload(&centers, 1100.0, 0.45, 30, 9)
            .queries
            .iter()
            .map(|q| Query::from_prob_range(*q, Refine::reference(1e-6)))
            .collect()
    };

    let snap = index.snapshot();
    let sequential = BatchExecutor::run_sequential(&*snap, &queries);

    // Perturb the index while the parallel run happens on the snapshot.
    let extra = datagen::lb_dataset(12, 11);
    std::thread::scope(|scope| {
        let snap = &snap;
        let queries = &queries;
        let handle = scope.spawn(move || BatchExecutor::new(4).run(snap.as_ref(), queries));
        for (i, o) in extra.iter().enumerate() {
            index.insert_batch(&[UncertainObject::new(90_000 + i as u64, o.pdf.clone())]);
        }
        let parallel = handle.join().unwrap();
        assert!(
            parallel.same_results(&sequential),
            "scheduling or concurrent commits changed an answer"
        );
    });
    assert_eq!(index.len(), BASE_N + 12);
}

/// Mixed insert/delete batches end at exactly the state an unversioned
/// in-memory tree reaches with the same ops.
#[test]
fn epoch_commits_match_an_unversioned_oracle() {
    let objs = base_objects();
    let index = loaded_index(&objs);

    let mut oracle = UTree::<2>::builder()
        .uniform_catalog(8)
        .build()
        .expect("valid catalog");
    oracle.bulk_load(&objs);

    let extra = datagen::lb_dataset(20, 13);
    let inserts: Vec<_> = extra
        .iter()
        .enumerate()
        .map(|(i, o)| UncertainObject::new(95_000 + i as u64, o.pdf.clone()))
        .collect();
    let deletes: Vec<_> = objs[..10].to_vec();

    index.insert_batch(&inserts);
    let (_, removed) = index.delete_batch(&deletes);
    assert_eq!(removed, 10);
    for o in &inserts {
        oracle.insert(o);
    }
    for o in &deletes {
        assert!(oracle.delete(o));
    }

    let snap = index.snapshot();
    assert_eq!(snap.len(), oracle.len());
    snap.check_invariants().unwrap();
    for q in &probe_queries() {
        let got = snap.execute(q);
        let want = oracle.execute(q);
        assert_eq!(got.matches, want.matches);
        assert_eq!(got.stats.node_reads, want.stats.node_reads);
    }
}
