//! Integration tests pinning the paper's qualitative claims — the "shape"
//! of the evaluation that any reproduction must preserve.

use utree_repro::prelude::*;

fn build_pair(n: usize) -> (UTree<2>, UPcrTree<2>, Vec<UncertainObject<2>>) {
    let objs = datagen::lb_dataset(n, 11);
    let mut tree = UTree::<2>::builder().build().expect("valid default");
    let mut upcr = UPcrTree::<2>::builder().build().expect("valid default");
    tree.bulk_load(&objs);
    upcr.bulk_load(&objs);
    (tree, upcr, objs)
}

/// Table 1's headline: "U-trees are much smaller due to their greater node
/// capacities" — CFBs (8d values) vs m PCRs (2d·m values).
#[test]
fn utree_is_substantially_smaller_than_upcr() {
    let (tree, upcr, _) = build_pair(4_000);
    let ratio = upcr.index_size_bytes() as f64 / tree.index_size_bytes() as f64;
    assert!(
        ratio > 1.5,
        "paper reports ~2.4x (11.9M/5.0M); got only {ratio:.2}x"
    );
}

/// Fig 9's I/O panels: the U-tree significantly outperforms U-PCR on node
/// accesses "in all cases, again due to its much larger node fanout".
#[test]
fn utree_beats_upcr_on_node_accesses() {
    let (tree, upcr, objs) = build_pair(6_000);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = datagen::workload(&centers, 1_500.0, 0.6, 20, 3);
    let mut tree_io = 0u64;
    let mut upcr_io = 0u64;
    for q in &w.queries {
        let builder = Query::range(q.region)
            .threshold(q.threshold)
            .refine(Refine::reference(1e-6));
        let a = builder.run(&tree).unwrap();
        let b = builder.run(&upcr).unwrap();
        assert_eq!(
            a.sorted_ids(),
            b.sorted_ids(),
            "result agreement is a precondition"
        );
        tree_io += a.stats.node_reads;
        upcr_io += b.stats.node_reads;
    }
    assert!(
        tree_io < upcr_io,
        "U-tree I/O {tree_io} must beat U-PCR {upcr_io}"
    );
}

/// Fig 9/10's CPU panels: most qualifying objects are reported without any
/// appearance-probability computation (the percentages atop the bars reach
/// 83–97% for 2D datasets at qs >= 1000).
#[test]
fn most_results_are_validated_without_integration() {
    let (tree, _, objs) = build_pair(6_000);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = datagen::workload(&centers, 1_500.0, 0.6, 20, 5);
    let mut acc = QueryStats::default();
    for q in &w.queries {
        let outcome = Query::range(q.region)
            .threshold(q.threshold)
            .refine(Refine::reference(1e-6))
            .run(&tree)
            .unwrap();
        acc += &outcome.stats;
    }
    assert!(acc.results > 0);
    let frac = acc.directly_reported_fraction();
    assert!(
        frac > 0.5,
        "only {:.0}% of results validated for free (paper: 83–97%)",
        frac * 100.0
    );
}

/// Sec 6.2: U-PCR degrades when the catalog grows too large (fanout loss
/// dominates), so very large m must cost more I/O than a moderate m.
#[test]
fn upcr_io_grows_with_catalog_size() {
    let objs = datagen::lb_dataset(4_000, 13);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = datagen::workload(&centers, 500.0, 0.5, 15, 9);
    let io_for = |m: usize| {
        let mut t = UPcrTree::<2>::builder().uniform_catalog(m).build().unwrap();
        t.bulk_load(&objs);
        let mut io = 0u64;
        for q in &w.queries {
            let outcome = Query::range(q.region)
                .threshold(q.threshold)
                .refine(Refine::reference(1e-6))
                .run(&t)
                .unwrap();
            io += outcome.stats.node_reads;
        }
        io
    };
    let small = io_for(3);
    let large = io_for(12);
    assert!(
        large > small,
        "m=12 I/O ({large}) should exceed m=3 I/O ({small}) — fat entries shrink fanout"
    );
}

/// The dynamic-structure claim: a U-tree built by random insertions and
/// thinned by deletions answers exactly like a freshly built one.
#[test]
fn incremental_equals_rebuilt() {
    let objs = datagen::ca_dataset(1_500, 21);
    let mut incremental = UTree::<2>::builder().uniform_catalog(10).build().unwrap();
    incremental.bulk_load(&objs);
    // Delete the middle third.
    for o in &objs[500..1000] {
        assert!(incremental.delete(o));
    }
    let mut rebuilt = UTree::<2>::builder().uniform_catalog(10).build().unwrap();
    rebuilt.bulk_load(objs[..500].iter().chain(objs[1000..].iter()));
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = datagen::workload(&centers, 1_200.0, 0.4, 15, 77);
    for q in &w.queries {
        let builder = Query::range(q.region)
            .threshold(q.threshold)
            .refine(Refine::reference(1e-8));
        let a = builder.run(&incremental).unwrap().sorted_ids();
        let b = builder.run(&rebuilt).unwrap().sorted_ids();
        assert_eq!(a, b);
    }
}

/// Fig 7's premise: Monte-Carlo is expensive — and the filter's purpose is
/// to avoid it. On a typical workload the filter must decide the vast
/// majority of inspected leaf entries.
#[test]
fn filter_decides_most_inspected_entries() {
    let (tree, _, objs) = build_pair(6_000);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let w = datagen::workload(&centers, 1_000.0, 0.6, 20, 31);
    let mut decided = 0u64;
    let mut undecided = 0u64;
    for q in &w.queries {
        let s = Query::range(q.region)
            .threshold(q.threshold)
            .refine(Refine::reference(1e-6))
            .run(&tree)
            .unwrap()
            .stats;
        decided += s.pruned + s.validated;
        undecided += s.candidates;
        assert_eq!(s.visited, s.pruned + s.validated + s.candidates);
    }
    assert!(
        decided > 3 * undecided,
        "filter decided {decided}, left {undecided} to refinement"
    );
}
