//! Property tests for the on-disk codecs: seeded-random objects (all pdf
//! families, including histograms with degenerate bins and zero-mass
//! regions, in 1/2/3 dimensions) must survive encode→decode byte-exactly,
//! and the rstar node codecs must round-trip whole pages of entries.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use utree_repro::index::entry::{UCodec, ULeafEntry, UPcrCodec, UPcrLeafEntry};
use utree_repro::index::object_codec::{decode_object, encode_object};
use utree_repro::index::{fit_cfb_pair, PcrSet};
use utree_repro::prelude::*;
use utree_repro::rstar::{InnerEntry, NodeCodec};
use utree_repro::store::{f32_round_down, f32_round_up, RecordAddr};

const CASES: usize = 120;

fn random_point<const D: usize>(rng: &mut SmallRng) -> Point<D> {
    let mut c = [0.0; D];
    for x in c.iter_mut() {
        *x = rng.gen_range(-5_000.0..5_000.0);
    }
    Point::new(c)
}

fn random_rect<const D: usize>(rng: &mut SmallRng) -> Rect<D> {
    let mut min = [0.0; D];
    let mut max = [0.0; D];
    for i in 0..D {
        let a = rng.gen_range(-5_000.0..5_000.0);
        min[i] = a;
        max[i] = a + rng.gen_range(0.5..800.0);
    }
    Rect { min, max }
}

/// A histogram with adversarial structure: some dimensions collapse to a
/// single (degenerate) bin, and a random subset of cells carries zero mass.
fn random_histogram<const D: usize>(rng: &mut SmallRng) -> HistogramPdf<D> {
    let rect = random_rect::<D>(rng);
    let mut bins = [1usize; D];
    for b in bins.iter_mut() {
        // gen_range(1..=4) keeps degenerate single-bin dimensions common.
        *b = rng.gen_range(1..=4usize);
    }
    let cells: usize = bins.iter().product();
    let mut weights: Vec<f64> = (0..cells)
        .map(|_| {
            if rng.gen_range(0..10u32) < 3 {
                0.0 // zero-mass region
            } else {
                rng.gen_range(0.01..5.0)
            }
        })
        .collect();
    // At least one cell must carry mass.
    let idx = rng.gen_range(0..cells);
    weights[idx] = weights[idx].max(0.5);
    HistogramPdf::new(rect, bins, weights)
}

fn random_object<const D: usize>(id: u64, rng: &mut SmallRng) -> UncertainObject<D> {
    let pdf = match rng.gen_range(0..4u32) {
        0 => ObjectPdf::UniformBall {
            center: random_point(rng),
            radius: rng.gen_range(0.5..400.0),
        },
        1 => ObjectPdf::UniformBox {
            rect: random_rect(rng),
        },
        2 => ObjectPdf::ConGauBall {
            center: random_point(rng),
            radius: rng.gen_range(1.0..400.0),
            sigma: rng.gen_range(0.5..200.0),
        },
        _ => ObjectPdf::Histogram(random_histogram(rng)),
    };
    UncertainObject::new(id, pdf)
}

fn check_roundtrips<const D: usize>(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for id in 0..CASES as u64 {
        let obj = random_object::<D>(id, &mut rng);
        let bytes = encode_object(&obj);
        let back = decode_object::<D>(&bytes);
        assert_eq!(back, obj, "object codec round trip failed (D={D}, id={id})");
        // Encoding is deterministic: same object, same bytes.
        assert_eq!(encode_object(&back), bytes);
    }
}

#[test]
fn object_codec_roundtrips_random_objects_1d() {
    check_roundtrips::<1>(101);
}

#[test]
fn object_codec_roundtrips_random_objects_2d() {
    check_roundtrips::<2>(202);
}

#[test]
fn object_codec_roundtrips_random_objects_3d() {
    check_roundtrips::<3>(303);
}

/// A random ball prepared exactly like `UTree::insert` prepares entries:
/// PCRs → CFB pair → outward-rounded MBR, all f32-exact on the page.
fn random_uleaf_entry<const D: usize>(
    id: u64,
    catalog: &Arc<UCatalog>,
    rng: &mut SmallRng,
) -> ULeafEntry<D> {
    let pdf: ObjectPdf<D> = ObjectPdf::UniformBall {
        center: random_point(rng),
        radius: rng.gen_range(10.0..400.0),
    };
    let pcrs = PcrSet::compute(&pdf, catalog);
    let cfbs = fit_cfb_pair(&pcrs, catalog);
    let raw = pdf.mbr();
    let mut mbr = raw;
    for i in 0..D {
        mbr.min[i] = f32_round_down(raw.min[i]);
        mbr.max[i] = f32_round_up(raw.max[i]);
    }
    let addr = RecordAddr {
        page: rng.gen_range(0..1_000u64),
        slot: rng.gen_range(0..64u16),
    };
    ULeafEntry::new(cfbs, mbr, addr, id, catalog)
}

#[test]
fn utree_node_codec_roundtrips_random_pages() {
    let catalog = Arc::new(UCatalog::paper_utree_default());
    let codec = UCodec::<2>::new(catalog.clone());
    let mut rng = SmallRng::seed_from_u64(77);
    for round in 0..20 {
        let n = rng.gen_range(1..=codec.leaf_capacity());
        let entries: Vec<ULeafEntry<2>> = (0..n as u64)
            .map(|id| random_uleaf_entry(id, &catalog, &mut rng))
            .collect();
        let mut bytes = Vec::new();
        codec.encode_leaf(&entries, &mut bytes);
        assert!(bytes.len() < utree_repro::store::PAGE_SIZE);
        let back = codec.decode_leaf(&bytes);
        assert_eq!(back, entries, "leaf page round trip failed (round {round})");

        // Inner entries: keys round outward, so the decoded key must cover
        // the original within an f32 ulp.
        let inner: Vec<InnerEntry<_>> = entries
            .iter()
            .map(|e| {
                use utree_repro::rstar::LeafRecord;
                InnerEntry {
                    key: e.key(),
                    child: e.id * 3 + 1,
                }
            })
            .collect();
        let mut ibytes = Vec::new();
        codec.encode_inner(&inner, &mut ibytes);
        let iback = codec.decode_inner(&ibytes);
        assert_eq!(iback.len(), inner.len());
        for (got, want) in iback.iter().zip(&inner) {
            assert_eq!(got.child, want.child);
            for i in 0..2 {
                assert!(got.key.lo.min[i] <= want.key.lo.min[i]);
                assert!(got.key.lo.max[i] >= want.key.lo.max[i]);
                assert!(got.key.hi.min[i] <= want.key.hi.min[i]);
                assert!(got.key.hi.max[i] >= want.key.hi.max[i]);
            }
        }
    }
}

#[test]
fn upcr_node_codec_roundtrips_random_pages() {
    let catalog = Arc::new(UCatalog::uniform(9));
    let codec = UPcrCodec::<2>::new(catalog.clone());
    let mut rng = SmallRng::seed_from_u64(99);
    for round in 0..20 {
        let n = rng.gen_range(1..=codec.leaf_capacity());
        let entries: Vec<UPcrLeafEntry<2>> = (0..n as u64)
            .map(|id| {
                let pdf: ObjectPdf<2> = ObjectPdf::UniformBall {
                    center: random_point(&mut rng),
                    radius: rng.gen_range(10.0..400.0),
                };
                let pcrs = PcrSet::compute(&pdf, &catalog);
                // Round to the stored f32 values first (as UPcrTree does)
                // so equality after decoding is exact.
                let rounded = PcrSet::from_rects(
                    pcrs.rects()
                        .iter()
                        .map(|r| {
                            let mut min = [0.0; 2];
                            let mut max = [0.0; 2];
                            for i in 0..2 {
                                min[i] = r.min[i] as f32 as f64;
                                max[i] = r.max[i] as f32 as f64;
                                if min[i] > max[i] {
                                    std::mem::swap(&mut min[i], &mut max[i]);
                                }
                            }
                            Rect { min, max }
                        })
                        .collect(),
                );
                let raw = pdf.mbr();
                UPcrLeafEntry {
                    pcrs: rounded,
                    mbr: Rect {
                        min: [f32_round_down(raw.min[0]), f32_round_down(raw.min[1])],
                        max: [f32_round_up(raw.max[0]), f32_round_up(raw.max[1])],
                    },
                    addr: RecordAddr {
                        page: rng.gen_range(0..500u64),
                        slot: rng.gen_range(0..32u16),
                    },
                    id,
                }
            })
            .collect();
        let mut bytes = Vec::new();
        codec.encode_leaf(&entries, &mut bytes);
        let back = codec.decode_leaf(&bytes);
        assert_eq!(
            back, entries,
            "U-PCR leaf round trip failed (round {round})"
        );
    }
}

/// Decoded objects must not just be equal — they must *behave* equally:
/// the appearance probability drives query answers after a reopen.
#[test]
fn decoded_objects_preserve_appearance_probabilities() {
    let mut rng = SmallRng::seed_from_u64(55);
    for id in 0..30u64 {
        let obj = random_object::<2>(id, &mut rng);
        let back = decode_object::<2>(&encode_object(&obj));
        let rq = Rect::cube(&obj.mbr().center(), rng.gen_range(50.0..1_000.0));
        let p0 = utree_repro::pdf::appearance_reference(&obj.pdf, &rq, 1e-9);
        let p1 = utree_repro::pdf::appearance_reference(&back.pdf, &rq, 1e-9);
        assert_eq!(p0, p1, "object {id} changed behaviour through the codec");
    }
}
