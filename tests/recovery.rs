//! Crash recovery: a disk-backed tree must reopen to *some committed
//! prefix* of its update batches no matter where the crash lands — at any
//! WAL frame boundary, mid-frame, or mid-apply under an injected backend
//! fault — and answer byte-identically to an in-memory oracle replaying
//! that prefix.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use utree_repro::prelude::*;
use utree_repro::store::wal::replay;
use utree_repro::store::{
    DiskPageFile, FaultMode, FaultStore, PageId, ReplayTarget, Wal, WalStore, PAGE_SIZE,
};

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("utree-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[derive(Clone)]
enum Op {
    Insert(UncertainObject<2>),
    Delete(UncertainObject<2>),
}

fn apply_ops<S: PageStore>(tree: &mut UTree<2, S>, batch: &[Op]) {
    for op in batch {
        match op {
            Op::Insert(o) => {
                tree.insert(o);
            }
            Op::Delete(o) => {
                assert!(tree.delete(o), "scripted delete must find its object");
            }
        }
    }
}

/// The scripted workload: a bulk-loaded base plus `BATCHES` update batches
/// mixing inserts of new objects with deletes of base objects.
const BASE_N: usize = 150;
const BATCHES: usize = 5;

fn base_objects() -> Vec<UncertainObject<2>> {
    datagen::lb_dataset(BASE_N, 101)
}

fn scripted_batches(base: &[UncertainObject<2>]) -> Vec<Vec<Op>> {
    let extra = datagen::lb_dataset(BATCHES * 6, 103);
    (0..BATCHES)
        .map(|b| {
            let mut batch: Vec<Op> = extra[b * 6..(b + 1) * 6]
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    Op::Insert(UncertainObject::new(
                        50_000 + (b * 6 + i) as u64,
                        o.pdf.clone(),
                    ))
                })
                .collect();
            // Two deletes per batch, from disjoint slices of the base.
            batch.push(Op::Delete(base[b * 2].clone()));
            batch.push(Op::Delete(base[b * 2 + 1].clone()));
            batch
        })
        .collect()
}

fn fresh_tree(base: &[UncertainObject<2>]) -> UTree<2> {
    let mut tree = UTree::<2>::builder()
        .uniform_catalog(8)
        .build()
        .expect("valid catalog");
    tree.bulk_load(base);
    tree
}

fn probe_queries() -> Vec<Query<2>> {
    let mode = Refine::reference(1e-6);
    vec![
        Query::range(Rect::new([1500.0, 1500.0], [5200.0, 5200.0]))
            .threshold(0.5)
            .refine(mode)
            .build()
            .unwrap(),
        Query::range(Rect::new([4800.0, 4800.0], [9000.0, 9000.0]))
            .threshold(0.3)
            .refine(mode)
            .build()
            .unwrap(),
    ]
}

type Oracle = (usize, Vec<QueryOutcome>);

/// Opens `scratch` (a fabricated crash state) and demands it answer
/// byte-identically to the oracle for `k` committed batches.
fn assert_recovers_prefix(
    scratch: &Path,
    cut: u64,
    k: usize,
    oracles: &[Oracle],
    queries: &[Query<2>],
) {
    let (want_len, want_outcomes) = &oracles[k];
    let recovered = DiskUTree::<2>::open(scratch, 32)
        .unwrap_or_else(|e| panic!("open after crash at byte {cut} failed: {e}"));
    assert_eq!(
        recovered.len(),
        *want_len,
        "crash at byte {cut} must recover exactly {k} committed batches"
    );
    recovered
        .check_invariants()
        .unwrap_or_else(|e| panic!("crash at byte {cut}: recovered tree unsound: {e}"));
    for (q, want) in queries.iter().zip(want_outcomes) {
        let got = recovered.execute(q);
        assert_eq!(got.matches, want.matches, "crash at byte {cut}");
        assert_eq!(
            got.stats.node_reads, want.stats.node_reads,
            "crash at byte {cut}: recovered structure must equal the oracle's"
        );
    }
}

/// The tentpole property: crash anywhere, recover a committed prefix.
///
/// A crash state is a WAL prefix plus whatever the backend had absorbed
/// when the crash hit. Write-ahead ordering (pages apply only after their
/// commit is durable) means every reachable state pairs a WAL cut with a
/// backend holding the applies of `j ≤ k` committed batches, where `k` is
/// the number of commit markers under the cut. This test fabricates both
/// extremes and a mixed middle:
///
/// * every frame boundary AND a torn tail 3 bytes short of it, over the
///   pristine (`j = 0`) backend — pure log replay;
/// * each intermediate backend capture (`j` batches applied, stale
///   superblock and all) under cuts with `k ≥ j` — replay converging
///   over a half-applied base.
#[test]
fn recovery_equals_a_committed_prefix_at_every_crash_point() {
    let base = base_objects();
    let batches = scripted_batches(&base);
    let dir = temp_dir("prefix");
    fresh_tree(&base).save(&dir).unwrap();

    // The backend as it was before any batch applied.
    let pristine = temp_dir("prefix-pristine");
    copy_dir(&dir, &pristine);

    // Write the batches through the WAL, committing each; capture the
    // live page files after every commit (the `j`-batches-applied
    // backends, mid-run superblocks included).
    let captures: Vec<PathBuf> = (1..=BATCHES)
        .map(|j| temp_dir(&format!("prefix-applied-{j}")))
        .collect();
    {
        let mut disk = DiskUTree::<2>::open(&dir, 32).unwrap();
        for (j, batch) in batches.iter().enumerate() {
            apply_ops(&mut disk, batch);
            let receipt = disk.commit().unwrap();
            assert!(receipt.durable, "default policy syncs every commit");
            std::fs::create_dir_all(&captures[j]).unwrap();
            for f in ["index.pg", "heap.pg"] {
                std::fs::copy(dir.join(f), captures[j].join(f)).unwrap();
            }
        }
    }

    // Oracles: the committed prefixes k = 0..=BATCHES, with their answers.
    let queries = probe_queries();
    let oracles: Vec<Oracle> = (0..=BATCHES)
        .map(|k| {
            let mut t = fresh_tree(&base);
            for batch in &batches[..k] {
                apply_ops(&mut t, batch);
            }
            let outcomes: Vec<_> = queries.iter().map(|q| t.execute(q)).collect();
            (t.len(), outcomes)
        })
        .collect();

    let frames = Wal::scan(dir.join("wal.log")).unwrap();
    let commit_ends: Vec<u64> = frames
        .iter()
        .filter(|f| f.is_commit())
        .map(|f| f.end)
        .collect();
    assert!(
        commit_ends.len() >= BATCHES,
        "every batch leaves a commit marker"
    );
    let committed_under = |cut: u64| commit_ends.iter().filter(|&&e| e <= cut).count();

    // Crash offsets: the empty log, every frame boundary, and a torn tail
    // 3 bytes short of each boundary.
    let mut crash_points = vec![8u64];
    for f in &frames {
        crash_points.push(f.end - 3);
        crash_points.push(f.end);
    }

    let scratch = temp_dir("prefix-scratch");
    let fabricate = |backend: &Path, cut: u64| {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&pristine, &scratch);
        for f in ["index.pg", "heap.pg"] {
            let src = backend.join(f);
            if src.exists() {
                std::fs::copy(src, scratch.join(f)).unwrap();
            }
        }
        std::fs::copy(dir.join("wal.log"), scratch.join("wal.log")).unwrap();
        std::fs::OpenOptions::new()
            .write(true)
            .open(scratch.join("wal.log"))
            .unwrap()
            .set_len(cut)
            .unwrap();
    };

    // Extreme 1: nothing applied, every possible log length.
    for &cut in &crash_points {
        fabricate(&pristine, cut);
        assert_recovers_prefix(&scratch, cut, committed_under(cut), &oracles, &queries);
    }

    // Mixed: j batches applied, log cut at the j-th commit, at the next
    // commit (if any), and at the full log.
    let full = frames.last().unwrap().end;
    for j in 1..=BATCHES {
        let mut cuts = vec![commit_ends[j - 1], full];
        if j < commit_ends.len() {
            cuts.push(commit_ends[j]);
        }
        for cut in cuts {
            fabricate(&captures[j - 1], cut);
            assert_recovers_prefix(&scratch, cut, committed_under(cut), &oracles, &queries);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&pristine);
    let _ = std::fs::remove_dir_all(&scratch);
    for c in &captures {
        let _ = std::fs::remove_dir_all(c);
    }
}

/// Updates that were never committed roll back on reopen: dropping the
/// tree stages them into the log (no marker), and recovery discards the
/// uncommitted tail.
#[test]
fn uncommitted_tail_rolls_back_to_the_last_commit() {
    let base = base_objects();
    let dir = temp_dir("rollback");
    fresh_tree(&base).save(&dir).unwrap();

    {
        let mut disk = DiskUTree::<2>::open(&dir, 32).unwrap();
        let extra = datagen::lb_dataset(10, 107);
        for (i, o) in extra.iter().take(5).enumerate() {
            disk.insert(&UncertainObject::new(60_000 + i as u64, o.pdf.clone()));
        }
        disk.commit().unwrap();
        // Five more inserts that never see a commit marker.
        for (i, o) in extra.iter().skip(5).enumerate() {
            disk.insert(&UncertainObject::new(61_000 + i as u64, o.pdf.clone()));
        }
    }

    let reopened = DiskUTree::<2>::open(&dir, 32).unwrap();
    assert_eq!(
        reopened.len(),
        BASE_N + 5,
        "the uncommitted second half must roll back"
    );
    reopened.check_invariants().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint folds the log into the snapshot (truncating it to its
/// header), and commits after the checkpoint keep recovering.
#[test]
fn checkpoint_truncates_the_log_and_later_commits_survive() {
    let base = base_objects();
    let batches = scripted_batches(&base);
    let dir = temp_dir("checkpoint");
    fresh_tree(&base).save(&dir).unwrap();

    let mut oracle = fresh_tree(&base);
    {
        let mut disk = DiskUTree::<2>::open(&dir, 32).unwrap();
        for batch in &batches[..2] {
            apply_ops(&mut disk, batch);
            disk.commit().unwrap();
        }
        disk.checkpoint().unwrap();
        assert_eq!(
            std::fs::metadata(dir.join("wal.log")).unwrap().len(),
            8,
            "checkpoint leaves only the log header"
        );
        for batch in &batches[2..] {
            apply_ops(&mut disk, batch);
            disk.commit().unwrap();
        }
    }
    for batch in &batches {
        apply_ops(&mut oracle, batch);
    }

    let reopened = DiskUTree::<2>::open(&dir, 32).unwrap();
    assert_eq!(reopened.len(), oracle.len());
    reopened.check_invariants().unwrap();
    for q in &probe_queries() {
        assert_eq!(reopened.execute(q).matches, oracle.execute(q).matches);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group commit defers the fsync to every Nth commit; receipts say so, and
/// an explicit `flush` forces durability early.
#[test]
fn group_commit_defers_syncs_and_flush_forces_them() {
    let base = base_objects();
    let dir = temp_dir("group");
    fresh_tree(&base).save(&dir).unwrap();

    let mut disk = DiskUTree::<2>::open(&dir, 32).unwrap();
    disk.set_group_commit(4);
    let extra = datagen::lb_dataset(8, 109);

    let syncs_before = disk.wal_sync_count();
    let mut receipts = Vec::new();
    for (i, o) in extra.iter().take(4).enumerate() {
        disk.insert(&UncertainObject::new(70_000 + i as u64, o.pdf.clone()));
        receipts.push(disk.commit().unwrap());
    }
    assert_eq!(
        receipts.iter().map(|r| r.durable).collect::<Vec<_>>(),
        vec![false, false, false, true],
        "only the 4th commit of the group syncs"
    );
    assert_eq!(
        disk.wal_sync_count() - syncs_before,
        1,
        "one fsync covers the whole group"
    );

    // A lone commit mid-group stays volatile until flush() forces it down.
    disk.insert(&UncertainObject::new(71_000, extra[4].pdf.clone()));
    let r = disk.commit().unwrap();
    assert!(!r.durable);
    disk.flush().unwrap();

    drop(disk);
    let reopened = DiskUTree::<2>::open(&dir, 32).unwrap();
    assert_eq!(reopened.len(), BASE_N + 5);
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-memory replay target mirroring what recovery rebuilds, for
/// store-level fault tests.
#[derive(Default)]
struct MemTarget {
    pages: HashMap<PageId, [u8; PAGE_SIZE]>,
}

impl ReplayTarget for MemTarget {
    fn apply_image(&mut self, page: PageId, data: &[u8; PAGE_SIZE]) -> std::io::Result<()> {
        self.pages.insert(page, *data);
        Ok(())
    }
    fn apply_alloc(&mut self, page: PageId) -> std::io::Result<()> {
        self.pages.insert(page, [0u8; PAGE_SIZE]);
        Ok(())
    }
    fn apply_release(&mut self, page: PageId) -> std::io::Result<()> {
        self.pages.remove(&page);
        Ok(())
    }
}

/// Injected backend faults during the apply phase cannot lose committed
/// data: whatever the backend managed to absorb, replaying the log onto a
/// fresh target reconstructs every committed page image.
#[test]
fn committed_batches_survive_backend_write_faults() {
    for trip_at in 1..=6u64 {
        for mode in [FaultMode::Fail, FaultMode::ShortWrite(100)] {
            let dir = temp_dir(&format!("fault-{trip_at}-{mode:?}"));
            std::fs::create_dir_all(&dir).unwrap();
            let wal = std::sync::Arc::new(std::sync::Mutex::new(
                Wal::create(dir.join("wal.log")).unwrap(),
            ));
            let backend = FaultStore::new(
                DiskPageFile::create(dir.join("data.pg")).unwrap(),
                trip_at,
                mode,
            );
            let mut store = WalStore::wrap(backend, wal, 0);

            // Two committed batches of page writes; remember what each
            // page must hold afterwards.
            let mut expected: HashMap<PageId, [u8; PAGE_SIZE]> = HashMap::new();
            for batch in 0..2u8 {
                for i in 0..3u8 {
                    let id = store.allocate().unwrap();
                    let mut img = [0u8; PAGE_SIZE];
                    img[..2].copy_from_slice(&[batch + 1, i + 1]);
                    store.write(id, &img[..]).unwrap();
                    expected.insert(id, img);
                }
                // The apply phase behind this commit is where the fault
                // trips; the commit may now report the sick backend, but
                // the log write itself is unaffected — recovery below is
                // what must not lose data.
                let _ = store.commit(true);
            }

            // "Crash": drop everything, then recover from the log alone.
            drop(store);
            let recovery = Wal::recover(dir.join("wal.log")).unwrap();
            assert_eq!(recovery.batches.len(), 2);
            let mut target = MemTarget::default();
            replay(&recovery.batches, &mut [&mut target]).unwrap();
            assert_eq!(target.pages.len(), expected.len());
            for (id, img) in &expected {
                assert_eq!(
                    target.pages.get(id),
                    Some(img),
                    "page {id} lost under fault at write {trip_at} ({mode:?})"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Crash-point audit for `checkpoint()` under a group-commit window: the
/// deferred (`durable: false`) commits must be forced durable *before* the
/// snapshot rename, so the checkpointed state — reopened from snapshot
/// alone, WAL truncated — contains every committed batch, including the
/// ones whose fsync was still owed when checkpoint began.
#[test]
fn checkpoint_forces_deferred_group_commits_durable() {
    let base = base_objects();
    let dir = temp_dir("ckpt-group");
    fresh_tree(&base).save(&dir).unwrap();

    let mut disk = DiskUTree::<2>::open(&dir, 32).unwrap();
    disk.set_group_commit(10); // window far larger than the batch count
    let extra = datagen::lb_dataset(3, 211);
    for (i, o) in extra.iter().enumerate() {
        disk.insert(&UncertainObject::new(80_000 + i as u64, o.pdf.clone()));
        let r = disk.commit().unwrap();
        assert!(!r.durable, "commit {i} must be deferred by the window");
    }
    disk.checkpoint().unwrap();
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len(),
        8,
        "checkpoint truncated the log — the snapshot is all there is"
    );
    drop(disk);

    // The "crash": reopen from the snapshot alone. Every deferred commit
    // must be present — checkpoint promised durability for all of them.
    let reopened = DiskUTree::<2>::open(&dir, 32).unwrap();
    assert_eq!(reopened.len(), BASE_N + 3);
    reopened.check_invariants().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-point audit for drop with deferred commits: a commit that
/// returned `durable: false` promised the data would reach disk by the
/// next fsync. Dropping the tree with that fsync still owed must not lose
/// the batch — the store closes the group-commit window on the way down,
/// so only an actual crash (not a clean shutdown) loses deferred state.
#[test]
fn clean_drop_syncs_deferred_group_commits() {
    let base = base_objects();
    let dir = temp_dir("drop-deferred");
    fresh_tree(&base).save(&dir).unwrap();

    {
        let mut disk = DiskUTree::<2>::open(&dir, 32).unwrap();
        disk.set_group_commit(8);
        let extra = datagen::lb_dataset(2, 223);
        for (i, o) in extra.iter().enumerate() {
            disk.insert(&UncertainObject::new(81_000 + i as u64, o.pdf.clone()));
            let r = disk.commit().unwrap();
            assert!(!r.durable, "the window must defer this commit");
        }
        // No flush, no checkpoint — the tree goes down owing an fsync.
    }

    let reopened = DiskUTree::<2>::open(&dir, 32).unwrap();
    assert_eq!(
        reopened.len(),
        BASE_N + 2,
        "deferred commits lost on clean drop — the receipt's promise broke"
    );
    reopened.check_invariants().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
