//! Top-k ranking cross-checks: every backend — the two bounded best-first
//! trees, the refine-everything sequential scan, and the disk-backed
//! reopened variants — must produce *identical* ranked answers under a
//! deterministic refinement mode, and those answers must cohere with the
//! threshold-query surface they share a filter with.

use utree_repro::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("utree-ranking-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

struct Fixture {
    utree: UTree<2>,
    upcr: UPcrTree<2>,
    scan: SeqScan<2>,
}

fn fixture(n: usize, seed: u64) -> Fixture {
    let objs = datagen::lb_dataset(n, seed);
    let mut utree = UTree::<2>::builder().uniform_catalog(8).build().unwrap();
    let mut upcr = UPcrTree::<2>::builder().uniform_catalog(8).build().unwrap();
    let mut scan = SeqScan::<2>::builder().uniform_catalog(8).build().unwrap();
    utree.bulk_load(&objs);
    upcr.bulk_load(&objs);
    scan.bulk_load(&objs);
    Fixture { utree, upcr, scan }
}

fn rank_queries(count: usize, seed: u64) -> Vec<RankQuery<2>> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let c = Point::new([rng.gen_range(1000.0..9000.0), rng.gen_range(1000.0..9000.0)]);
            Query::range(Rect::cube(&c, rng.gen_range(500.0..4000.0)))
                .top(rng.gen_range(1..15))
                .refine(Refine::reference(1e-9))
                .build()
                .expect("valid rank query")
        })
        .collect()
}

#[test]
fn all_backends_agree_with_the_seqscan_oracle() {
    for (n, seed) in [(400, 3), (700, 19)] {
        let f = fixture(n, seed);
        for (qi, q) in rank_queries(20, seed ^ 0xAB).iter().enumerate() {
            let oracle = f.scan.rank_topk(q);
            let from_utree = f.utree.rank_topk(q);
            let from_upcr = f.upcr.rank_topk(q);
            assert_eq!(
                from_utree.matches, oracle.matches,
                "n={n} query {qi}: U-tree diverged from the oracle"
            );
            assert_eq!(
                from_upcr.matches, oracle.matches,
                "n={n} query {qi}: U-PCR diverged from the oracle"
            );
        }
    }
}

#[test]
fn topk_agrees_with_threshold_queries() {
    let f = fixture(600, 7);
    for (qi, q) in rank_queries(25, 41).iter().enumerate() {
        let top = f.utree.rank_topk(q);
        // Full ranking from the oracle (k = everything) gives the ground
        // truth ordering and the (k+1)-th probability.
        let full = f.scan.rank_topk(
            &Query::range(*q.region())
                .top(usize::MAX)
                .refine(q.refine_mode())
                .build()
                .unwrap(),
        );
        let k = top.len();
        assert_eq!(
            top.matches,
            full.matches[..k],
            "query {qi}: top-k is not the prefix of the full ranking"
        );
        if full.len() > k {
            let kth = top.min_probability().unwrap();
            let next = full.matches[k].p;
            assert!(
                kth >= next,
                "query {qi}: returned probability {kth} below the (k+1)-th {next}"
            );
            // Cross-check against the threshold surface: querying at a
            // threshold between p_k and p_{k+1} must return exactly the
            // top-k id set (skip near-ties where the filter boundary is
            // legitimately open to either side).
            if kth - next > 1e-6 {
                let pq = 0.5 * (kth + next);
                let range = Query::range(*q.region())
                    .threshold(pq)
                    .refine(q.refine_mode())
                    .run(&f.utree)
                    .unwrap();
                let mut expect: Vec<u64> = top.ids();
                expect.sort_unstable();
                assert_eq!(
                    range.sorted_ids(),
                    expect,
                    "query {qi}: threshold query at p_q={pq} disagrees with top-{k}"
                );
            }
        }
    }
}

#[test]
fn bounded_traversals_refine_less_than_the_oracle() {
    let f = fixture(1200, 13);
    let mut probes_utree = 0u64;
    let mut probes_scan = 0u64;
    for q in &rank_queries(15, 99) {
        probes_utree += f.utree.rank_topk(q).stats.prob_computations;
        probes_scan += f.scan.rank_topk(q).stats.prob_computations;
    }
    assert!(
        probes_utree < probes_scan,
        "best-first ranking computed {probes_utree} probabilities, the \
         refine-everything oracle {probes_scan} — the bounds bought nothing"
    );
}

#[test]
fn reopened_disk_indexes_rank_identically() {
    let f = fixture(500, 23);
    let queries = rank_queries(12, 5);

    let dir_u = temp_dir("utree");
    let dir_p = temp_dir("upcr");
    f.utree.save(&dir_u).expect("save U-tree");
    f.upcr.save(&dir_p).expect("save U-PCR");
    {
        // Tiny pools so ranking actually churns the cache.
        let disk_u = DiskUTree::<2>::open(&dir_u, 8).expect("reopen U-tree");
        let disk_p = DiskUPcrTree::<2>::open(&dir_p, 8).expect("reopen U-PCR");
        for (qi, q) in queries.iter().enumerate() {
            let mem = f.utree.rank_topk(q);
            let disk = disk_u.rank_topk(q);
            assert_eq!(mem.matches, disk.matches, "U-tree query {qi}");
            // Logical cost counters are storage-independent.
            assert!(mem.stats.same_counts(&disk.stats), "U-tree query {qi}");
            let disk = disk_p.rank_topk(q);
            assert_eq!(
                f.upcr.rank_topk(q).matches,
                disk.matches,
                "U-PCR query {qi}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir_u);
    let _ = std::fs::remove_dir_all(&dir_p);
}

#[test]
fn monte_carlo_ranking_is_schedule_independent() {
    let f = fixture(300, 31);
    let queries: Vec<RankQuery<2>> = rank_queries(10, 77)
        .into_iter()
        .map(|q| {
            Query::range(*q.region())
                .top(q.k())
                .refine(Refine::monte_carlo(20_000, 0xBEEF))
                .build()
                .unwrap()
        })
        .collect();
    // Per-object seeding: the same query answers identically however it is
    // scheduled — reused context, fresh context, parallel batch.
    let par = BatchExecutor::new(4).run_ranked(&f.utree, &queries);
    let seq = BatchExecutor::run_ranked_sequential(&f.utree, &queries);
    assert!(par.same_results(&seq), "parallel ranking diverged");
    for (q, out) in queries.iter().zip(&seq.outcomes) {
        assert_eq!(f.utree.rank_topk(q).matches, out.matches);
    }
    // Across backends the refinement stream still depends only on
    // (seed, id) — so any object BOTH trees refine carries a bit-equal
    // estimate. Full set identity is deliberately NOT asserted under
    // Monte-Carlo: a sampled estimate may land outside an object's sound
    // analytic bounds, so trees with different bound tightness can
    // legitimately disagree about marginal contenders (see docs/API.md
    // "Monte-Carlo ties and determinism"; exact agreement is asserted
    // under quadrature in all_backends_agree_with_the_seqscan_oracle).
    for (qi, q) in queries.iter().enumerate() {
        let a = f.utree.rank_topk(q);
        let b = f.upcr.rank_topk(q);
        for (x, y) in a.iter().flat_map(|x| b.iter().map(move |y| (x, y))) {
            if x.id == y.id {
                assert_eq!(x.p, y.p, "MC query {qi}: object {} estimate differs", x.id);
            }
        }
    }
}

#[test]
fn ranked_batches_scale_across_workers_with_identical_answers() {
    let f = fixture(500, 47);
    let queries = rank_queries(32, 11);
    let seq = BatchExecutor::run_ranked_sequential(&f.utree, &queries);
    for workers in [2, 4, 8] {
        let par = BatchExecutor::new(workers).run_ranked(&f.utree, &queries);
        assert!(
            par.same_results(&seq),
            "{workers}-worker ranked batch diverged from sequential"
        );
        assert_eq!(par.len(), queries.len());
        assert!(par.stats.same_counts(&seq.stats));
    }
    // The scan backend serves ranked batches through the same engine.
    let scan_seq = BatchExecutor::run_ranked_sequential(&f.scan, &queries);
    let scan_par = BatchExecutor::new(4).run_ranked(&f.scan, &queries);
    assert!(scan_par.same_results(&scan_seq));
    for (a, b) in seq.outcomes.iter().zip(&scan_seq.outcomes) {
        assert_eq!(a.matches, b.matches, "tree and oracle batches disagree");
    }
}

#[test]
fn rank_builder_validates() {
    let rect = Rect::new([0.0, 0.0], [10.0, 10.0]);
    assert_eq!(
        Query::range(rect).top(0).build().unwrap_err(),
        QueryError::ZeroK
    );
    let nan = Rect {
        min: [f64::NAN, 0.0],
        max: [10.0, 10.0],
    };
    assert_eq!(
        Query::range(nan).top(3).build().unwrap_err(),
        QueryError::NonFiniteRegion { dim: 0 }
    );
    let q = Query::range(rect)
        .top(3)
        .refine(Refine::reference(1e-8))
        .build()
        .unwrap();
    assert_eq!(q.k(), 3);
    assert_eq!(q.refine_mode(), Refine::reference(1e-8));

    // Degenerate inputs answer sanely.
    let empty_tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    let out = empty_tree.rank_topk(&q);
    assert!(out.is_empty());
    assert_eq!(out.min_probability(), None);
}
