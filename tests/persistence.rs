//! Persistence round-trip: a bulk-loaded index, saved to disk and reopened
//! cold through a tiny buffer pool, must answer every workload query with
//! identical matches/provenance and identical *logical* I/O — only the
//! physical cost model changes.

use utree_repro::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("utree-persistence-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn build_utree(n: usize, seed: u64) -> (UTree<2>, Vec<UncertainObject<2>>) {
    let objs = datagen::lb_dataset(n, seed);
    let mut tree = UTree::<2>::builder()
        .uniform_catalog(8)
        .build()
        .expect("valid catalog");
    tree.bulk_load(&objs);
    (tree, objs)
}

#[test]
fn saved_utree_reopens_with_identical_outcomes() {
    let (tree, objs) = build_utree(700, 11);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let workload = datagen::workload(&centers, 900.0, 0.5, 25, 3);

    let dir = temp_dir("equiv");
    tree.save(&dir).expect("save must succeed");

    // 8-page pools: far smaller than the index, so queries actually churn
    // the cache.
    let reopened = DiskUTree::<2>::open(&dir, 8).expect("open must succeed");
    assert_eq!(reopened.len(), tree.len());
    assert_eq!(reopened.catalog().values(), tree.catalog().values());
    reopened.check_invariants().expect("reopened tree is sound");

    let mode = Refine::reference(1e-8);
    for (i, q) in workload.queries.iter().enumerate() {
        let mem = tree.execute(&Query::from_prob_range(*q, mode));
        let disk = reopened.execute(&Query::from_prob_range(*q, mode));
        assert_eq!(
            mem.matches, disk.matches,
            "query {i} disagrees after the round trip"
        );
        // Logical node accesses are the paper's metric and must not depend
        // on the storage backend.
        assert_eq!(mem.stats.node_reads, disk.stats.node_reads, "query {i}");
        assert_eq!(mem.stats.heap_reads, disk.stats.heap_reads, "query {i}");
        assert_eq!(
            mem.stats.prob_computations, disk.stats.prob_computations,
            "query {i}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_pool_misses_cold_then_hits_warm() {
    let (tree, objs) = build_utree(500, 23);
    let dir = temp_dir("hits");
    tree.save(&dir).unwrap();

    let reopened = DiskUTree::<2>::open(&dir, 8).unwrap();
    let center = objs[0].mbr().center();
    let q = Query::range(Rect::cube(&center, 1200.0))
        .threshold(0.4)
        .refine(Refine::reference(1e-8))
        .build()
        .unwrap();

    let stats = reopened.node_store().stats();
    let first = reopened.execute(&q);
    let misses_after_first = stats.cache_misses();
    assert!(!first.is_empty(), "query centred on data must hit");
    assert!(misses_after_first > 0, "a cold cache must miss");

    let second = reopened.execute(&q);
    assert_eq!(first.matches, second.matches);
    assert!(
        stats.cache_hits() > 0,
        "repeating the query against a warm cache must hit"
    );
    // Hit/miss counters always partition the counted reads.
    assert_eq!(stats.cache_hits() + stats.cache_misses(), stats.reads());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saved_upcr_reopens_with_identical_outcomes() {
    let objs = datagen::lb_dataset(400, 7);
    let mut tree = UPcrTree::<2>::builder().build().expect("default catalog");
    tree.bulk_load(&objs);
    let centers: Vec<Point<2>> = objs.iter().map(|o| o.mbr().center()).collect();
    let workload = datagen::workload(&centers, 1000.0, 0.6, 10, 5);

    let dir = temp_dir("upcr");
    tree.save(&dir).unwrap();
    let reopened = DiskUPcrTree::<2>::open(&dir, 8).unwrap();
    assert_eq!(reopened.len(), tree.len());

    let mode = Refine::reference(1e-8);
    for q in &workload.queries {
        let mem = tree.execute(&Query::from_prob_range(*q, mode));
        let disk = reopened.execute(&Query::from_prob_range(*q, mode));
        assert_eq!(mem.matches, disk.matches);
        assert_eq!(mem.stats.node_reads, disk.stats.node_reads);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_rejects_wrong_kind_and_dimensionality() {
    let (tree, _) = build_utree(100, 31);
    let dir = temp_dir("mismatch");
    tree.save(&dir).unwrap();
    // Saved as a U-tree: opening as U-PCR must fail.
    assert!(DiskUPcrTree::<2>::open(&dir, 8).is_err());
    // Saved as 2-D: opening as 3-D must fail.
    assert!(DiskUTree::<3>::open(&dir, 8).is_err());
    // And the happy path still works afterwards.
    assert!(DiskUTree::<2>::open(&dir, 8).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_tree_supports_further_updates() {
    let (mut tree, objs) = build_utree(200, 41);
    // Delete a few before saving so the snapshot has a non-trivial free
    // list to replicate.
    for o in objs.iter().take(30) {
        assert!(tree.delete(o));
    }
    let dir = temp_dir("updates");
    tree.save(&dir).unwrap();

    let mut reopened = DiskUTree::<2>::open(&dir, 16).unwrap();
    assert_eq!(reopened.len(), 170);
    // Insert new objects through the pool-backed store.
    let extra = datagen::lb_dataset(40, 43);
    for (i, o) in extra.iter().enumerate() {
        reopened.insert(&UncertainObject::new(10_000 + i as u64, o.pdf.clone()));
    }
    assert_eq!(reopened.len(), 210);
    reopened.check_invariants().expect("tree stays sound");
    reopened.flush().expect("flush to disk");

    // Everything — old and new — answers a domain-spanning query.
    let everything = Query::range(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]))
        .threshold(0.01)
        .refine(Refine::reference(1e-7))
        .build()
        .unwrap();
    let out = reopened.execute(&everything);
    assert_eq!(out.len(), 210);

    // flush() persisted pages AND metadata: a cold reopen sees the
    // post-update superstructure, not the originally saved one.
    drop(reopened);
    let cold = DiskUTree::<2>::open(&dir, 16).unwrap();
    assert_eq!(cold.len(), 210, "flush must persist the updated metadata");
    cold.check_invariants().unwrap();
    assert_eq!(cold.execute(&everything).matches, out.matches);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_the_directory_an_index_was_opened_from_is_safe() {
    let (tree, _) = build_utree(300, 61);
    let dir = temp_dir("self-save");
    tree.save(&dir).unwrap();

    let mut reopened = DiskUTree::<2>::open(&dir, 16).unwrap();
    let extra = datagen::lb_dataset(20, 63);
    for (i, o) in extra.iter().enumerate() {
        reopened.insert(&UncertainObject::new(20_000 + i as u64, o.pdf.clone()));
    }
    // `save` into the live directory would race the WAL the pools are
    // replaying from, so it is rejected outright...
    let err = reopened.save(&dir).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // ...and `checkpoint` is the supported way to fold the log back into
    // the snapshot in place: temp-file-and-rename must neither truncate
    // the live backing files nor tear the snapshot.
    reopened.checkpoint().unwrap();
    assert_eq!(reopened.len(), 320, "the open tree keeps working");

    let fresh = DiskUTree::<2>::open(&dir, 16).unwrap();
    assert_eq!(fresh.len(), 320);
    fresh.check_invariants().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_with_zero_frames_is_a_typed_error() {
    let (tree, _) = build_utree(50, 71);
    let dir = temp_dir("zero-frames");
    tree.save(&dir).unwrap();
    let err = match DiskUTree::<2>::open(&dir, 0) {
        Err(e) => e,
        Ok(_) => panic!("opening with zero frames must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let _ = std::fs::remove_dir_all(&dir);
}
