//! Shared-read concurrency: many threads querying one index must produce
//! exactly what one thread does.
//!
//! Three layers are exercised over one shared `DiskUTree` (disk pages
//! behind the latched buffer pool) and the in-memory backends:
//!
//! * raw `std::thread::scope` readers over `&tree` — the `&self` query
//!   path itself;
//! * the `BatchExecutor` engine — scheduling must not change any answer;
//! * a randomized stress mix — N threads × M queries with randomized
//!   regions/thresholds/refine modes, every outcome compared field by
//!   field (matches, provenance, per-query count stats) against the
//!   sequential ground truth, plus the summed logical I/O.

use std::path::PathBuf;
use utree_repro::prelude::*;

const N_OBJECTS: usize = 400;
const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 25;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("utree-concurrency-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn build_tree(seed: u64) -> UTree<2> {
    let mut tree = UTree::<2>::builder()
        .uniform_catalog(10)
        .build()
        .expect("valid catalog");
    tree.bulk_load(datagen::lb_dataset(N_OBJECTS, seed));
    tree
}

/// A deterministic per-thread workload: thread `t` gets queries
/// `t * QUERIES_PER_THREAD ..` of one seeded stream, so the sequential
/// ground truth and the threaded run see identical queries.
fn workloads(seed: u64) -> Vec<Vec<Query<2>>> {
    let centers = datagen::lb_points(N_OBJECTS, seed);
    let probes = datagen::workload(
        &centers,
        1_200.0,
        0.0,
        THREADS * QUERIES_PER_THREAD,
        seed + 1,
    );
    probes
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            // Vary thresholds and refine modes across the stream:
            // Monte-Carlo every third query so schedule-independent
            // sampling is stressed too.
            let pq = 0.05 + 0.9 * ((i * 37 % 100) as f64 / 100.0);
            let refine = if i % 3 == 0 {
                Refine::monte_carlo(10_000, 0xC0FFEE ^ i as u64)
            } else {
                Refine::reference(1e-7)
            };
            Query::range(q.region)
                .threshold(pq)
                .refine(refine)
                .build()
                .expect("valid query")
        })
        .collect::<Vec<_>>()
        .chunks(QUERIES_PER_THREAD)
        .map(|c| c.to_vec())
        .collect()
}

/// Outcomes must agree on everything deterministic: ids, provenance,
/// refined probabilities (bit-equal), and every count statistic.
fn assert_outcomes_identical(got: &QueryOutcome, want: &QueryOutcome, what: &str) {
    assert_eq!(got.matches, want.matches, "{what}: matches diverged");
    assert!(
        got.stats.same_counts(&want.stats),
        "{what}: stats diverged: {:?} vs {:?}",
        got.stats,
        want.stats
    );
}

#[test]
fn raw_threads_over_shared_in_memory_tree_match_sequential() {
    let tree = build_tree(11);
    let loads = workloads(13);

    // Sequential ground truth, one reused context.
    let mut ctx = QueryCtx::new();
    let expected: Vec<Vec<QueryOutcome>> = loads
        .iter()
        .map(|qs| qs.iter().map(|q| tree.execute_with(q, &mut ctx)).collect())
        .collect();
    let seq_logical: u64 = expected
        .iter()
        .flatten()
        .map(|o| o.stats.node_reads + o.stats.heap_reads)
        .sum();

    // The same workloads, one thread per chunk, sharing `&tree`.
    tree.reset_io();
    tree.heap().file().stats().reset();
    let results: Vec<Vec<QueryOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = loads
            .iter()
            .map(|qs| {
                s.spawn(|| {
                    let mut ctx = QueryCtx::new();
                    qs.iter()
                        .map(|q| tree.execute_with(q, &mut ctx))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut par_logical = 0u64;
    for (t, (got_chunk, want_chunk)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(got_chunk.len(), want_chunk.len());
        for (i, (got, want)) in got_chunk.iter().zip(want_chunk).enumerate() {
            assert_outcomes_identical(got, want, &format!("thread {t} query {i}"));
            par_logical += got.stats.node_reads + got.stats.heap_reads;
        }
    }
    // Per-query logical I/O is counted inside the query (not a shared
    // counter delta), so the sums must be exactly equal …
    assert_eq!(par_logical, seq_logical, "summed logical I/O diverged");
    // … and the shared store counters saw exactly that many node reads.
    assert_eq!(
        tree.node_store().stats().reads(),
        results
            .iter()
            .flatten()
            .map(|o| o.stats.node_reads)
            .sum::<u64>(),
        "shared counters must record every thread's reads exactly once"
    );
}

#[test]
fn stress_shared_disk_tree_behind_latched_pool() {
    let tree = build_tree(29);
    let dir = temp_dir("disk-stress");
    tree.save(&dir).expect("save index");
    let loads = workloads(31);
    let flat: Vec<Query<2>> = loads.iter().flatten().copied().collect();

    // Sequential ground truth from its own cold copy (so cache state
    // cannot leak between the runs being compared).
    let seq_tree = DiskUTree::<2>::open(&dir, 64).expect("open saved index");
    let mut ctx = QueryCtx::new();
    let expected: Vec<QueryOutcome> = flat
        .iter()
        .map(|q| seq_tree.execute_with(q, &mut ctx))
        .collect();
    let seq_node_reads: u64 = expected.iter().map(|o| o.stats.node_reads).sum();
    let seq_heap_reads: u64 = expected.iter().map(|o| o.stats.heap_reads).sum();
    drop(seq_tree);

    // 64 frames stripe the pool across multiple latches (this is the
    // configuration the whole PR exists for).
    let shared = DiskUTree::<2>::open(&dir, 64).expect("open saved index");
    assert!(
        shared.node_store().shard_count() > 1,
        "64-frame pool must be latch-striped"
    );
    let results: Vec<Vec<QueryOutcome>> = std::thread::scope(|s| {
        let shared = &shared;
        let handles: Vec<_> = loads
            .iter()
            .map(|qs| {
                s.spawn(move || {
                    let mut ctx = QueryCtx::new();
                    qs.iter()
                        .map(|q| shared.execute_with(q, &mut ctx))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let got: Vec<&QueryOutcome> = results.iter().flatten().collect();
    assert_eq!(got.len(), expected.len());
    for (i, (g, w)) in got.iter().zip(&expected).enumerate() {
        assert_outcomes_identical(g, w, &format!("disk query {i}"));
    }
    assert_eq!(
        got.iter().map(|o| o.stats.node_reads).sum::<u64>(),
        seq_node_reads,
        "summed logical node I/O diverged"
    );
    assert_eq!(
        got.iter().map(|o| o.stats.heap_reads).sum::<u64>(),
        seq_heap_reads,
        "summed logical heap I/O diverged"
    );
    // Pool counting contract after quiescence: every counted logical read
    // recorded exactly one hit or miss, and residency stayed bounded.
    let pool = shared.node_store();
    assert_eq!(
        pool.stats().cache_hits() + pool.stats().cache_misses(),
        pool.stats().reads()
    );
    assert!(pool.resident_pages() <= pool.capacity());

    drop(shared);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_executor_equals_sequential_on_disk_backend() {
    let tree = build_tree(47);
    let dir = temp_dir("batch-engine");
    tree.save(&dir).expect("save index");
    let queries: Vec<Query<2>> = workloads(53).into_iter().flatten().collect();

    let shared = DiskUTree::<2>::open(&dir, 96).expect("open saved index");
    let par = BatchExecutor::new(THREADS).run(&shared, &queries);
    let seq = BatchExecutor::run_sequential(&shared, &queries);
    assert!(
        par.same_results(&seq),
        "4-thread batch over the shared buffered disk index diverged"
    );
    assert!(par.stats.same_counts(&seq.stats));
    assert_eq!(par.workers, THREADS);
    assert_eq!(par.len(), queries.len());

    drop(shared);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_executor_agrees_across_backends() {
    let objs = datagen::lb_dataset(250, 61);
    let mut utree = UTree::<2>::builder().uniform_catalog(8).build().unwrap();
    let mut upcr = UPcrTree::<2>::builder().uniform_catalog(8).build().unwrap();
    let mut scan = SeqScan::<2>::builder().uniform_catalog(8).build().unwrap();
    utree.bulk_load(&objs);
    upcr.bulk_load(&objs);
    scan.bulk_load(&objs);

    let queries: Vec<Query<2>> = workloads(67)
        .into_iter()
        .flatten()
        // Reference mode only: exact quadrature is backend-independent,
        // so all three structures must return the same id sets.
        .map(|q| {
            Query::range(*q.region())
                .threshold(q.threshold())
                .refine(Refine::reference(1e-8))
                .build()
                .unwrap()
        })
        .collect();

    let exec = BatchExecutor::new(THREADS);
    let a = exec.run(&utree, &queries);
    let b = exec.run(&upcr, &queries);
    let c = exec.run(&scan, &queries);
    for i in 0..queries.len() {
        let ids_a = a.outcomes[i].sorted_ids();
        assert_eq!(ids_a, b.outcomes[i].sorted_ids(), "query {i}: u-pcr");
        assert_eq!(ids_a, c.outcomes[i].sorted_ids(), "query {i}: seq-scan");
    }
}
