//! Property-based tests of the paper's core invariants.
//!
//! These are the load-bearing guarantees: if any of them breaks, the index
//! can return wrong answers — so they are fuzzed over random pdfs,
//! catalogs, queries and LP instances rather than hand-picked cases.
//!
//! The sampling is driven by a seeded [`SmallRng`] (the build environment
//! has no `proptest`): every case prints its inputs on failure via the
//! assertion messages, and reruns are fully deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utree_repro::geom::{Point, Rect};
use utree_repro::index::{filter_object, fit_cfb_pair, CfbView, FilterOutcome, PcrSet, UCatalog};
use utree_repro::lp::LinearProgram;
use utree_repro::pdf::{appearance_reference, ObjectPdf};

const CASES: usize = 64;

/// A random uncertain 2D object over the supported pdf models.
fn arb_pdf(rng: &mut SmallRng) -> ObjectPdf<2> {
    match rng.gen_range(0..3usize) {
        0 => ObjectPdf::UniformBall {
            center: Point::new([rng.gen_range(100.0..9_900.0), rng.gen_range(100.0..9_900.0)]),
            radius: rng.gen_range(20.0..400.0),
        },
        1 => {
            let r = rng.gen_range(50.0..400.0);
            ObjectPdf::ConGauBall {
                center: Point::new([rng.gen_range(100.0..9_900.0), rng.gen_range(100.0..9_900.0)]),
                radius: r,
                sigma: r * rng.gen_range(0.3..0.9),
            }
        }
        _ => {
            let x = rng.gen_range(100.0..9_000.0);
            let y = rng.gen_range(100.0..9_000.0);
            ObjectPdf::UniformBox {
                rect: Rect::new(
                    [x, y],
                    [
                        x + rng.gen_range(20.0..600.0),
                        y + rng.gen_range(20.0..600.0),
                    ],
                ),
            }
        }
    }
}

fn arb_catalog(rng: &mut SmallRng) -> UCatalog {
    UCatalog::uniform(rng.gen_range(3..12usize))
}

/// PCRs are nested: pcr(p) shrinks as p grows (Sec 4.1).
#[test]
fn pcrs_are_nested() {
    let mut rng = SmallRng::seed_from_u64(0x9c25_0001);
    for case in 0..CASES {
        let pdf = arb_pdf(&mut rng);
        let cat = arb_catalog(&mut rng);
        let pcrs = PcrSet::compute(&pdf, &cat);
        for j in 1..pcrs.len() {
            let outer = pcrs.rect(j - 1);
            let inner = pcrs.rect(j);
            for i in 0..2 {
                assert!(outer.min[i] <= inner.min[i] + 1e-6, "case {case}: {pdf:?}");
                assert!(outer.max[i] >= inner.max[i] - 1e-6, "case {case}: {pdf:?}");
            }
        }
        // pcr(p1=0) equals the MBR.
        let mbr = pdf.mbr();
        for i in 0..2 {
            assert!(
                (pcrs.rect(0).min[i] - mbr.min[i]).abs() < 1.0,
                "case {case}: {pdf:?}"
            );
            assert!(
                (pcrs.rect(0).max[i] - mbr.max[i]).abs() < 1.0,
                "case {case}: {pdf:?}"
            );
        }
    }
}

/// CFBs bracket the PCRs at every catalog value (Sec 4.3 contract).
#[test]
fn cfbs_bracket_pcrs() {
    let mut rng = SmallRng::seed_from_u64(0x9c25_0002);
    for case in 0..CASES {
        let pdf = arb_pdf(&mut rng);
        let cat = arb_catalog(&mut rng);
        let pcrs = PcrSet::compute(&pdf, &cat);
        let pair = fit_cfb_pair(&pcrs, &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            let out = pair.outer.eval(p);
            let inn = pair.inner.eval(p);
            let pcr = pcrs.rect(j);
            for i in 0..2 {
                assert!(
                    out.min[i] <= pcr.min[i] + 1e-6,
                    "case {case}: outer low face at p={p}"
                );
                assert!(
                    out.max[i] >= pcr.max[i] - 1e-6,
                    "case {case}: outer high face at p={p}"
                );
                // Inner faces may collapse at p≈0.5 within quantile noise.
                assert!(
                    inn.min[i] >= pcr.min[i] - 0.5,
                    "case {case}: inner low face at p={p}"
                );
                assert!(
                    inn.max[i] <= pcr.max[i] + 0.5,
                    "case {case}: inner high face at p={p}"
                );
            }
        }
    }
}

/// Filter soundness: a pruned object's true appearance probability is
/// below the threshold; a validated object's is above (up to numeric
/// slack). This is Observations 2+3 against quadrature ground truth.
#[test]
fn filter_never_lies() {
    let mut rng = SmallRng::seed_from_u64(0x9c25_0003);
    for case in 0..CASES {
        let pdf = arb_pdf(&mut rng);
        let cat = arb_catalog(&mut rng);
        let qx = rng.gen_range(0.0..9_000.0);
        let qy = rng.gen_range(0.0..9_000.0);
        let qs = rng.gen_range(100.0..3_000.0);
        let pq = rng.gen_range(0.02..0.98);
        let rq = Rect::new([qx, qy], [qx + qs, qy + qs]);
        let truth = appearance_reference(&pdf, &rq, 1e-8);
        let mbr = pdf.mbr();
        const SLACK: f64 = 2e-3; // quantile grid + quadrature noise

        // Observation 2 (exact PCRs)…
        let pcrs = PcrSet::compute(&pdf, &cat);
        match filter_object(&pcrs, &mbr, &cat, &rq, pq) {
            FilterOutcome::Pruned => assert!(
                truth < pq + SLACK,
                "case {case}: PCR filter pruned an object with P={truth} >= pq={pq}"
            ),
            FilterOutcome::Validated => assert!(
                truth > pq - SLACK,
                "case {case}: PCR filter validated an object with P={truth} < pq={pq}"
            ),
            FilterOutcome::Candidate => {}
        }

        // …and Observation 3 (CFBs) must both be sound.
        let pair = fit_cfb_pair(&pcrs, &cat);
        let view = CfbView {
            pair: &pair,
            catalog: &cat,
        };
        match filter_object(&view, &mbr, &cat, &rq, pq) {
            FilterOutcome::Pruned => assert!(
                truth < pq + SLACK,
                "case {case}: CFB filter pruned an object with P={truth} >= pq={pq}"
            ),
            FilterOutcome::Validated => assert!(
                truth > pq - SLACK,
                "case {case}: CFB filter validated an object with P={truth} < pq={pq}"
            ),
            FilterOutcome::Candidate => {}
        }
    }
}

/// CFB filtering is weaker than exact-PCR filtering, never stronger in a
/// contradictory way: if the CFB view *validates*, exact PCRs must not
/// *prune*, and vice versa.
#[test]
fn cfb_and_pcr_filters_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x9c25_0004);
    for case in 0..CASES {
        let pdf = arb_pdf(&mut rng);
        let cat = arb_catalog(&mut rng);
        let qx = rng.gen_range(0.0..9_000.0);
        let qy = rng.gen_range(0.0..9_000.0);
        let qs = rng.gen_range(100.0..3_000.0);
        let pq = rng.gen_range(0.02..0.98);
        let rq = Rect::new([qx, qy], [qx + qs, qy + qs]);
        let mbr = pdf.mbr();
        let pcrs = PcrSet::compute(&pdf, &cat);
        let pair = fit_cfb_pair(&pcrs, &cat);
        let view = CfbView {
            pair: &pair,
            catalog: &cat,
        };
        let a = filter_object(&pcrs, &mbr, &cat, &rq, pq);
        let b = filter_object(&view, &mbr, &cat, &rq, pq);
        assert!(
            !(a == FilterOutcome::Pruned && b == FilterOutcome::Validated),
            "case {case}: PCR pruned but CFB validated ({pdf:?}, rq={rq:?}, pq={pq})"
        );
        assert!(
            !(a == FilterOutcome::Validated && b == FilterOutcome::Pruned),
            "case {case}: PCR validated but CFB pruned ({pdf:?}, rq={rq:?}, pq={pq})"
        );
    }
}

/// Rectangle algebra invariants the R*-tree machinery relies on.
#[test]
fn rect_algebra() {
    let mut rng = SmallRng::seed_from_u64(0x9c25_0005);
    for case in 0..CASES * 4 {
        let ax = rng.gen_range(-100.0..100.0);
        let ay = rng.gen_range(-100.0..100.0);
        let bx = rng.gen_range(-100.0..100.0);
        let by = rng.gen_range(-100.0..100.0);
        let a = Rect::new(
            [ax, ay],
            [ax + rng.gen_range(0.0..50.0), ay + rng.gen_range(0.0..50.0)],
        );
        let b = Rect::new(
            [bx, by],
            [bx + rng.gen_range(0.0..50.0), by + rng.gen_range(0.0..50.0)],
        );
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b), "case {case}");
        assert!(u.area() + 1e-9 >= a.area().max(b.area()), "case {case}");
        assert!((a.overlap(&b) - b.overlap(&a)).abs() < 1e-9, "case {case}");
        assert!(
            a.overlap(&b) <= a.area().min(b.area()) + 1e-9,
            "case {case}"
        );
        match a.intersection(&b) {
            Some(i) => {
                assert!(a.intersects(&b), "case {case}");
                assert!((i.area() - a.overlap(&b)).abs() < 1e-9, "case {case}");
            }
            None => assert!(!a.intersects(&b), "case {case}"),
        }
    }
}

/// The Simplex solver against brute-force vertex enumeration on random
/// bounded 2-variable programs.
#[test]
fn simplex_matches_vertex_enumeration() {
    let mut rng = SmallRng::seed_from_u64(0x9c25_0006);
    for case in 0..CASES {
        let c0 = rng.gen_range(-5.0..5.0);
        let c1 = rng.gen_range(-5.0..5.0);
        let rows: Vec<(f64, f64, f64)> = (0..rng.gen_range(3..8usize))
            .map(|_| {
                (
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-10.0..10.0),
                )
            })
            .collect();

        // Box-bound the problem so it is always feasible and bounded.
        let mut lp = LinearProgram::maximize(vec![c0, c1]);
        let mut all_rows: Vec<(f64, f64, f64)> = vec![
            (1.0, 0.0, 20.0),
            (-1.0, 0.0, 20.0),
            (0.0, 1.0, 20.0),
            (0.0, -1.0, 20.0),
        ];
        // Keep (0,0) feasible so feasibility is guaranteed.
        all_rows.extend(rows.iter().filter(|(_, _, rhs)| *rhs >= 0.0));
        for (a, b, rhs) in &all_rows {
            lp.less_eq(vec![*a, *b], *rhs);
        }
        let sol = lp.solve();
        assert!(
            sol.is_ok(),
            "case {case}: boxed feasible LP must solve: {sol:?}"
        );
        let sol = sol.unwrap();

        // Vertex enumeration: all pairwise constraint intersections.
        let mut best = f64::NEG_INFINITY;
        let n = all_rows.len();
        let feasible = |x: f64, y: f64| all_rows.iter().all(|(a, b, r)| a * x + b * y <= r + 1e-7);
        for i in 0..n {
            for j in (i + 1)..n {
                let (a1, b1, r1) = all_rows[i];
                let (a2, b2, r2) = all_rows[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 {
                    continue;
                }
                let x = (r1 * b2 - r2 * b1) / det;
                let y = (a1 * r2 - a2 * r1) / det;
                if feasible(x, y) {
                    best = best.max(c0 * x + c1 * y);
                }
            }
        }
        if feasible(0.0, 0.0) {
            best = best.max(0.0);
        }
        assert!(
            (sol.objective_value - best).abs() < 1e-5 * (1.0 + best.abs()),
            "case {case}: simplex {} vs enumeration {best}",
            sol.objective_value
        );
    }
}
