//! Property-based tests of the paper's core invariants, via proptest.
//!
//! These are the load-bearing guarantees: if any of them breaks, the index
//! can return wrong answers — so they are fuzzed over random pdfs,
//! catalogs, queries and LP instances rather than hand-picked cases.

use proptest::prelude::*;
use utree_repro::geom::{Point, Rect};
use utree_repro::index::{
    filter_object, fit_cfb_pair, CfbView, FilterOutcome, PcrSet, UCatalog,
};
use utree_repro::lp::LinearProgram;
use utree_repro::pdf::{appearance_reference, ObjectPdf};

/// Strategy: an uncertain 2D object with a random supported pdf model.
fn arb_pdf() -> impl Strategy<Value = ObjectPdf<2>> {
    let ball = (100.0..9_900.0f64, 100.0..9_900.0f64, 20.0..400.0f64)
        .prop_map(|(x, y, r)| ObjectPdf::UniformBall {
            center: Point::new([x, y]),
            radius: r,
        });
    let gau = (100.0..9_900.0f64, 100.0..9_900.0f64, 50.0..400.0f64, 0.3..0.9f64).prop_map(
        |(x, y, r, frac)| ObjectPdf::ConGauBall {
            center: Point::new([x, y]),
            radius: r,
            sigma: r * frac,
        },
    );
    let bx = (100.0..9_000.0f64, 100.0..9_000.0f64, 20.0..600.0f64, 20.0..600.0f64).prop_map(
        |(x, y, w, h)| ObjectPdf::UniformBox {
            rect: Rect::new([x, y], [x + w, y + h]),
        },
    );
    prop_oneof![ball, gau, bx]
}

fn arb_catalog() -> impl Strategy<Value = UCatalog> {
    (3usize..12).prop_map(UCatalog::uniform)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PCRs are nested: pcr(p) shrinks as p grows (Sec 4.1).
    #[test]
    fn pcrs_are_nested(pdf in arb_pdf(), cat in arb_catalog()) {
        let pcrs = PcrSet::compute(&pdf, &cat);
        for j in 1..pcrs.len() {
            let outer = pcrs.rect(j - 1);
            let inner = pcrs.rect(j);
            for i in 0..2 {
                prop_assert!(outer.min[i] <= inner.min[i] + 1e-6);
                prop_assert!(outer.max[i] >= inner.max[i] - 1e-6);
            }
        }
        // pcr(p1=0) equals the MBR.
        let mbr = pdf.mbr();
        for i in 0..2 {
            prop_assert!((pcrs.rect(0).min[i] - mbr.min[i]).abs() < 1.0);
            prop_assert!((pcrs.rect(0).max[i] - mbr.max[i]).abs() < 1.0);
        }
    }

    /// CFBs bracket the PCRs at every catalog value (Sec 4.3 contract).
    #[test]
    fn cfbs_bracket_pcrs(pdf in arb_pdf(), cat in arb_catalog()) {
        let pcrs = PcrSet::compute(&pdf, &cat);
        let pair = fit_cfb_pair(&pcrs, &cat);
        for (j, &p) in cat.values().iter().enumerate() {
            let out = pair.outer.eval(p);
            let inn = pair.inner.eval(p);
            let pcr = pcrs.rect(j);
            for i in 0..2 {
                prop_assert!(out.min[i] <= pcr.min[i] + 1e-6, "outer low face at p={p}");
                prop_assert!(out.max[i] >= pcr.max[i] - 1e-6, "outer high face at p={p}");
                // Inner faces may collapse at p≈0.5 within quantile noise.
                prop_assert!(inn.min[i] >= pcr.min[i] - 0.5, "inner low face at p={p}");
                prop_assert!(inn.max[i] <= pcr.max[i] + 0.5, "inner high face at p={p}");
            }
        }
    }

    /// Filter soundness: a pruned object's true appearance probability is
    /// below the threshold; a validated object's is above (up to numeric
    /// slack). This is Observations 2+3 against quadrature ground truth.
    #[test]
    fn filter_never_lies(
        pdf in arb_pdf(),
        cat in arb_catalog(),
        qx in 0.0..9_000.0f64,
        qy in 0.0..9_000.0f64,
        qs in 100.0..3_000.0f64,
        pq in 0.02..0.98f64,
    ) {
        let rq = Rect::new([qx, qy], [qx + qs, qy + qs]);
        let truth = appearance_reference(&pdf, &rq, 1e-8);
        let mbr = pdf.mbr();
        const SLACK: f64 = 2e-3; // quantile grid + quadrature noise

        // Observation 2 (exact PCRs)…
        let pcrs = PcrSet::compute(&pdf, &cat);
        match filter_object(&pcrs, &mbr, &cat, &rq, pq) {
            FilterOutcome::Pruned => prop_assert!(
                truth < pq + SLACK,
                "PCR filter pruned an object with P={truth} >= pq={pq}"
            ),
            FilterOutcome::Validated => prop_assert!(
                truth > pq - SLACK,
                "PCR filter validated an object with P={truth} < pq={pq}"
            ),
            FilterOutcome::Candidate => {}
        }

        // …and Observation 3 (CFBs) must both be sound.
        let pair = fit_cfb_pair(&pcrs, &cat);
        let view = CfbView { pair: &pair, catalog: &cat };
        match filter_object(&view, &mbr, &cat, &rq, pq) {
            FilterOutcome::Pruned => prop_assert!(
                truth < pq + SLACK,
                "CFB filter pruned an object with P={truth} >= pq={pq}"
            ),
            FilterOutcome::Validated => prop_assert!(
                truth > pq - SLACK,
                "CFB filter validated an object with P={truth} < pq={pq}"
            ),
            FilterOutcome::Candidate => {}
        }
    }

    /// CFB filtering is weaker than exact-PCR filtering, never stronger in
    /// a contradictory way: if the CFB view *validates*, exact PCRs must
    /// not *prune*, and vice versa.
    #[test]
    fn cfb_and_pcr_filters_are_consistent(
        pdf in arb_pdf(),
        cat in arb_catalog(),
        qx in 0.0..9_000.0f64,
        qy in 0.0..9_000.0f64,
        qs in 100.0..3_000.0f64,
        pq in 0.02..0.98f64,
    ) {
        let rq = Rect::new([qx, qy], [qx + qs, qy + qs]);
        let mbr = pdf.mbr();
        let pcrs = PcrSet::compute(&pdf, &cat);
        let pair = fit_cfb_pair(&pcrs, &cat);
        let view = CfbView { pair: &pair, catalog: &cat };
        let a = filter_object(&pcrs, &mbr, &cat, &rq, pq);
        let b = filter_object(&view, &mbr, &cat, &rq, pq);
        prop_assert!(
            !(a == FilterOutcome::Pruned && b == FilterOutcome::Validated),
            "PCR pruned but CFB validated"
        );
        prop_assert!(
            !(a == FilterOutcome::Validated && b == FilterOutcome::Pruned),
            "PCR validated but CFB pruned"
        );
    }

    /// Rectangle algebra invariants the R*-tree machinery relies on.
    #[test]
    fn rect_algebra(
        ax in -100.0..100.0f64, ay in -100.0..100.0f64,
        aw in 0.0..50.0f64, ah in 0.0..50.0f64,
        bx in -100.0..100.0f64, by in -100.0..100.0f64,
        bw in 0.0..50.0f64, bh in 0.0..50.0f64,
    ) {
        let a = Rect::new([ax, ay], [ax + aw, ay + ah]);
        let b = Rect::new([bx, by], [bx + bw, by + bh]);
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
        prop_assert!((a.overlap(&b) - b.overlap(&a)).abs() < 1e-9);
        prop_assert!(a.overlap(&b) <= a.area().min(b.area()) + 1e-9);
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.intersects(&b));
                prop_assert!((i.area() - a.overlap(&b)).abs() < 1e-9);
            }
            None => prop_assert!(!a.intersects(&b)),
        }
    }

    /// The Simplex solver against brute-force vertex enumeration on random
    /// bounded 2-variable programs.
    #[test]
    fn simplex_matches_vertex_enumeration(
        c0 in -5.0..5.0f64, c1 in -5.0..5.0f64,
        rows in proptest::collection::vec(
            (-3.0..3.0f64, -3.0..3.0f64, -10.0..10.0f64), 3..8),
    ) {
        // Box-bound the problem so it is always feasible and bounded.
        let mut lp = LinearProgram::maximize(vec![c0, c1]);
        let mut all_rows: Vec<(f64, f64, f64)> = vec![
            (1.0, 0.0, 20.0), (-1.0, 0.0, 20.0),
            (0.0, 1.0, 20.0), (0.0, -1.0, 20.0),
        ];
        all_rows.extend(rows.iter().filter(|(a, b, rhs)| {
            // keep (0,0) feasible so feasibility is guaranteed
            *rhs >= 0.0 || (a.abs() + b.abs() > 1e-6)
        }).filter(|(_, _, rhs)| *rhs >= 0.0));
        for (a, b, rhs) in &all_rows {
            lp.less_eq(vec![*a, *b], *rhs);
        }
        let sol = lp.solve();
        prop_assert!(sol.is_ok(), "boxed feasible LP must solve: {sol:?}");
        let sol = sol.unwrap();

        // Vertex enumeration: all pairwise constraint intersections.
        let mut best = f64::NEG_INFINITY;
        let n = all_rows.len();
        let feasible = |x: f64, y: f64| {
            all_rows.iter().all(|(a, b, r)| a * x + b * y <= r + 1e-7)
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let (a1, b1, r1) = all_rows[i];
                let (a2, b2, r2) = all_rows[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 {
                    continue;
                }
                let x = (r1 * b2 - r2 * b1) / det;
                let y = (a1 * r2 - a2 * r1) / det;
                if feasible(x, y) {
                    best = best.max(c0 * x + c1 * y);
                }
            }
        }
        if feasible(0.0, 0.0) {
            best = best.max(0.0);
        }
        prop_assert!(
            (sol.objective_value - best).abs() < 1e-5 * (1.0 + best.abs()),
            "simplex {} vs enumeration {best}",
            sol.objective_value
        );
    }
}
