//! STR bulk loading: the packed build must be *observably equivalent* to
//! the insert-built tree — identical matches **and provenance** for range,
//! threshold and top-k ranking queries, in 1, 2 and 3 dimensions — and the
//! equivalence must survive a save/open round trip and a WAL recovery.
//! Plus the `InsertStats` regression tests for the loop path.

use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utree_repro::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("utree-bulk-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Seeded uniform-ball objects in D dimensions.
fn dataset<const D: usize>(n: usize, seed: u64) -> Vec<UncertainObject<D>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let mut c = [0.0; D];
            for x in &mut c {
                *x = rng.gen_range(300.0..9700.0);
            }
            UncertainObject::new(
                id,
                ObjectPdf::UniformBall {
                    center: Point::new(c),
                    radius: rng.gen_range(40.0..220.0),
                },
            )
        })
        .collect()
}

fn probe_regions<const D: usize>(k: usize, seed: u64) -> Vec<Rect<D>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut c = [0.0; D];
            for x in &mut c {
                *x = rng.gen_range(1200.0..8800.0);
            }
            Rect::cube(&Point::new(c), rng.gen_range(600.0..3200.0))
        })
        .collect()
}

/// Matches with provenance, sorted by id, plus ranked matches — the full
/// observable behaviour the two builds must agree on.
type Observation = (Vec<(u64, Provenance)>, Vec<RankedMatch>);

fn observe<const D: usize, I: ProbIndex<D>>(
    index: &I,
    regions: &[Rect<D>],
    eps: f64,
) -> Vec<Observation> {
    regions
        .iter()
        .enumerate()
        .map(|(i, rq)| {
            let pq = [0.25, 0.5, 0.75][i % 3];
            let out = Query::range(*rq)
                .threshold(pq)
                .refine(Refine::reference(eps))
                .run(index)
                .unwrap();
            let mut matched: Vec<(u64, Provenance)> =
                out.matches.iter().map(|m| (m.id, m.provenance)).collect();
            matched.sort_unstable_by_key(|(id, _)| *id);
            let ranked = Query::range(*rq)
                .top(5)
                .refine(Refine::reference(eps))
                .run(index)
                .unwrap();
            (matched, ranked.matches)
        })
        .collect()
}

fn assert_equivalent<const D: usize>(n: usize, seed: u64, eps: f64) {
    let objs = dataset::<D>(n, seed);
    let mut bulk = UTree::<D>::builder().uniform_catalog(6).build().unwrap();
    let stats = bulk.bulk_load(&objs);
    assert!(stats.io_writes > 0, "packed build must write pages");
    bulk.check_invariants()
        .unwrap_or_else(|e| panic!("{D}-D bulk tree broken: {e}"));
    assert_eq!(bulk.len(), n);

    let mut incremental = UTree::<D>::builder().uniform_catalog(6).build().unwrap();
    for o in &objs {
        incremental.insert(o);
    }

    let regions = probe_regions::<D>(if D >= 3 { 6 } else { 9 }, seed ^ 0xbeef);
    assert_eq!(
        observe(&bulk, &regions, eps),
        observe(&incremental, &regions, eps),
        "{D}-D: packed build disagrees with insert-built tree"
    );

    // The packed tree keeps answering after updates (it is a real R*-tree,
    // not a frozen artifact): delete a slice, insert it back.
    for o in objs.iter().take(n / 4) {
        assert!(bulk.delete(o), "{D}-D: bulk-built entry not deletable");
        incremental.delete(o);
    }
    for o in objs.iter().take(n / 4) {
        bulk.insert(o);
        incremental.insert(o);
    }
    bulk.check_invariants().unwrap();
    assert_eq!(
        observe(&bulk, &regions, eps),
        observe(&incremental, &regions, eps),
        "{D}-D: divergence after post-bulk updates"
    );
}

#[test]
fn bulk_equals_insert_built_1d() {
    assert_equivalent::<1>(400, 11, 1e-8);
}

#[test]
fn bulk_equals_insert_built_2d() {
    assert_equivalent::<2>(500, 22, 1e-8);
}

#[test]
fn bulk_equals_insert_built_3d() {
    assert_equivalent::<3>(200, 33, 1e-6);
}

#[test]
fn upcr_bulk_equals_insert_built() {
    let objs = dataset::<2>(400, 44);
    let mut bulk = UPcrTree::<2>::builder().uniform_catalog(9).build().unwrap();
    let stats = bulk.bulk_load(&objs);
    assert!(stats.io_writes > 0);
    assert_eq!(stats.lp_nanos, 0, "U-PCR stores PCRs verbatim, no CFB fit");
    bulk.check_invariants().unwrap();
    let mut incremental = UPcrTree::<2>::builder().uniform_catalog(9).build().unwrap();
    for o in &objs {
        incremental.insert(o);
    }
    let regions = probe_regions::<2>(8, 45);
    assert_eq!(
        observe(&bulk, &regions, 1e-8),
        observe(&incremental, &regions, 1e-8)
    );
}

/// The serving tier: a bulk-loaded tree saved cold and reopened through
/// the BufferPool/WalStore stack answers identically, and the packed
/// layout survives a post-open commit + crash-style reopen (recovery).
#[test]
fn bulk_built_tree_survives_save_open_and_recovery() {
    let dir = temp_dir("serve");
    let objs = dataset::<2>(600, 55);
    let extra = dataset::<2>(650, 56).split_off(600);

    let mut mem = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    mem.bulk_load(&objs);
    mem.save(&dir).unwrap();

    let regions = probe_regions::<2>(8, 57);
    let expected = observe(&mem, &regions, 1e-8);

    // Cold open through the pool: identical answers.
    let mut disk = DiskUTree::<2>::open(&dir, 64).unwrap();
    assert_eq!(disk.len(), 600);
    assert_eq!(
        observe(&disk, &regions, 1e-8),
        expected,
        "cold-opened packed tree disagrees with its builder"
    );

    // Commit an update batch on top of the packed base, then reopen
    // without a checkpoint — recovery replays the WAL over the packed
    // snapshot.
    for o in &extra {
        disk.insert(o);
        mem.insert(o);
    }
    disk.commit().unwrap();
    drop(disk);
    let recovered = DiskUTree::<2>::open(&dir, 64).unwrap();
    assert_eq!(recovered.len(), 650);
    assert_eq!(
        observe(&recovered, &regions, 1e-8),
        observe(&mem, &regions, 1e-8),
        "recovery over a packed snapshot lost equivalence"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The packed build must also *cost less to serve*: full leaves and a
/// level-contiguous page order mean a strictly smaller index and strictly
/// fewer *physical* node reads through the buffer pool than the same data
/// inserted one at a time.
#[test]
fn packed_build_reads_fewer_pages_than_insert_built() {
    let objs = dataset::<2>(2000, 66);
    let mut bulk = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    bulk.bulk_load(&objs);
    let mut incremental = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    for o in &objs {
        incremental.insert(o);
    }
    assert!(
        bulk.index_size_bytes() < incremental.index_size_bytes(),
        "packed index ({} B) must be smaller than insert-built ({} B)",
        bulk.index_size_bytes(),
        incremental.index_size_bytes()
    );

    // Serve both cold through the disk stack and count the reads that
    // actually hit the node file — the paper's physical-I/O metric.
    let regions = probe_regions::<2>(12, 67);
    let physical_reads = |tree: &UTree<2>, tag: &str| -> u64 {
        let dir = temp_dir(tag);
        tree.save(&dir).unwrap();
        let disk = DiskUTree::<2>::open(&dir, 256).unwrap();
        for rq in &regions {
            Query::range(*rq)
                .threshold(0.5)
                .refine(Refine::reference(1e-7))
                .run(&disk)
                .unwrap();
        }
        let reads = disk.node_store().backend_stats().reads();
        drop(disk);
        let _ = std::fs::remove_dir_all(&dir);
        reads
    };
    let (rb, ri) = (
        physical_reads(&bulk, "phys-bulk"),
        physical_reads(&incremental, "phys-incr"),
    );
    assert!(
        rb < ri,
        "packed tree costs more physical node reads ({rb}) than insert-built ({ri})"
    );
}

/// `IndexBuilder::bulk` is build + bulk_load in one step.
#[test]
fn builder_bulk_constructs_and_loads() {
    let objs = dataset::<2>(150, 77);
    let tree: UTree<2> = UTree::builder().uniform_catalog(6).bulk(&objs).unwrap();
    assert_eq!(tree.len(), 150);
    tree.check_invariants().unwrap();
    let scan: SeqScan<2> = SeqScan::builder().uniform_catalog(6).bulk(&objs).unwrap();
    assert_eq!(scan.len(), 150);
}

/// Regression for the `InsertStats` aggregation: the loop path (bulk_load
/// on a non-empty tree, and the default trait impl) must accumulate each
/// insert's breakdown exactly once — the aggregate I/O counters equal the
/// sum of the individual insert deltas, and the aggregate CPU clocks stay
/// within the wall-clock actually spent (a double-counted aggregate
/// overshoots it).
#[test]
fn loop_bulk_load_stats_equal_summed_inserts() {
    let objs = dataset::<2>(240, 88);
    let (first, rest) = objs.split_first().unwrap();

    // Twin A: pre-insert one object, then the loop path via bulk_load.
    let mut a = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    a.insert(first);
    let t0 = Instant::now();
    let agg = a.bulk_load(rest);
    let elapsed = t0.elapsed().as_nanos();

    // Twin B: identical schedule, stats summed by hand.
    let mut b = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    b.insert(first);
    let mut sum = InsertStats::default();
    for o in rest {
        sum += &b.insert(o);
    }

    assert_eq!(
        (agg.io_reads, agg.io_writes),
        (sum.io_reads, sum.io_writes),
        "loop-path aggregate I/O must equal the summed per-insert deltas"
    );
    assert!(agg.pcr_nanos > 0 && agg.lp_nanos > 0);
    assert!(
        agg.pcr_nanos + agg.lp_nanos <= elapsed,
        "aggregate CPU clocks ({} ns) exceed the build's wall-clock ({elapsed} ns) — \
         per-insert time is being double-counted",
        agg.pcr_nanos + agg.lp_nanos
    );
}

/// Same regression for the packed path: phase clocks are measured once
/// per object and never exceed the build's own wall-clock.
#[test]
fn packed_bulk_load_stats_are_build_level() {
    let objs = dataset::<2>(240, 99);
    let mut tree = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    let t0 = Instant::now();
    let stats = tree.bulk_load(&objs);
    let elapsed = t0.elapsed().as_nanos();
    assert!(stats.pcr_nanos > 0 && stats.lp_nanos > 0);
    assert!(
        stats.pcr_nanos + stats.lp_nanos <= elapsed,
        "packed-build clocks overshoot wall-clock: {} > {elapsed}",
        stats.pcr_nanos + stats.lp_nanos
    );
    // The empty-input edge: no records, no I/O, len stays zero.
    let mut empty = UTree::<2>::builder().uniform_catalog(6).build().unwrap();
    let zero = empty.bulk_load(Vec::<UncertainObject<2>>::new());
    assert_eq!(zero, InsertStats::default());
    assert!(empty.is_empty());
}
