//! The multi-index serving engine, end to end: named sharded indexes in
//! one catalog directory must answer byte-identically to a single-tree
//! oracle — through scatter-gather, through save/open, and through WAL
//! crash recovery at every log cut — and the resident query service must
//! agree with direct execution.

use std::path::{Path, PathBuf};

use utree_repro::prelude::*;
use utree_repro::store::Wal;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("utree-serving-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Two scripted datasets, one per named index.
fn lb_objects(n: usize) -> Vec<UncertainObject<2>> {
    datagen::lb_dataset(n, 41)
}

fn ca_objects(n: usize) -> Vec<UncertainObject<2>> {
    datagen::lb_dataset(n, 43)
        .into_iter()
        .enumerate()
        .map(|(i, o)| UncertainObject::new(10_000 + i as u64, o.pdf))
        .collect()
}

fn oracle_tree(objects: &[UncertainObject<2>]) -> UTree<2> {
    let mut tree = UTree::<2>::builder()
        .uniform_catalog(8)
        .build()
        .expect("valid catalog");
    for o in objects {
        tree.insert(o);
    }
    tree
}

fn probe_range_queries() -> Vec<Query<2>> {
    let mode = Refine::reference(1e-6);
    vec![
        Query::range(Rect::new([1500.0, 1500.0], [5200.0, 5200.0]))
            .threshold(0.5)
            .refine(mode)
            .build()
            .unwrap(),
        Query::range(Rect::new([4800.0, 4800.0], [9000.0, 9000.0]))
            .threshold(0.3)
            .refine(mode)
            .build()
            .unwrap(),
        Query::range(Rect::new([0.0, 0.0], [10_000.0, 10_000.0]))
            .threshold(0.9)
            .refine(mode)
            .build()
            .unwrap(),
    ]
}

fn probe_rank_queries() -> Vec<RankQuery<2>> {
    vec![
        Query::range(Rect::new([1000.0, 1000.0], [6000.0, 6000.0]))
            .top(5)
            .refine(Refine::monte_carlo(3_000, 17))
            .build()
            .unwrap(),
        Query::range(Rect::new([2000.0, 2000.0], [9500.0, 9500.0]))
            .top(12)
            .refine(Refine::monte_carlo(3_000, 23))
            .build()
            .unwrap(),
    ]
}

/// Demands the sharded index answer every probe byte-identically (matches
/// and provenance; match order via [`canonicalize`]) to the oracle.
fn assert_matches_oracle<I: ProbIndex<2> + ?Sized>(index: &I, oracle: &UTree<2>, label: &str) {
    for q in &probe_range_queries() {
        let got = canonicalize(index.execute(q));
        let want = canonicalize(oracle.execute(q));
        assert_eq!(got.matches, want.matches, "{label}: range {:?}", q.region());
    }
    for q in &probe_rank_queries() {
        let got = index.rank_topk(q);
        let want = oracle.rank_topk(q);
        assert_eq!(got.matches, want.matches, "{label}: top-{}", q.k());
    }
}

/// Scatter-gather over a *disk-backed* catalog index equals the oracle for
/// every shard count, before and after save/open.
#[test]
fn sharded_catalog_answers_match_the_oracle_at_every_shard_count() {
    let objects = lb_objects(180);
    let oracle = oracle_tree(&objects);
    for shard_count in [1usize, 2, 4, 7] {
        let dir = temp_dir(&format!("shards-{shard_count}"));
        {
            let mut cat = IndexCatalog::<2>::create(&dir, 64).unwrap();
            cat.create_index(
                "lb",
                UCatalog::uniform(8),
                TreeConfig::default(),
                shard_count,
            )
            .unwrap();
            let index = cat.get_mut("lb").unwrap();
            for o in &objects {
                index.insert(o);
            }
            assert_matches_oracle(cat.get("lb").unwrap(), &oracle, "live");
            cat.flush().unwrap();
        }
        let cat = IndexCatalog::<2>::open(&dir, 64).unwrap();
        let index = cat.get("lb").unwrap();
        assert_eq!(index.shard_count(), shard_count);
        assert_eq!(index.len(), objects.len());
        assert_matches_oracle(index, &oracle, &format!("reopened x{shard_count}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A catalog holding several named indexes saves and opens as one unit:
/// definitions, shard layout and answers all survive.
#[test]
fn a_multi_index_catalog_survives_save_and_open() {
    let lb = lb_objects(150);
    let ca = ca_objects(120);
    let (lb_oracle, ca_oracle) = (oracle_tree(&lb), oracle_tree(&ca));
    let dir = temp_dir("multi");
    {
        let mut cat = IndexCatalog::<2>::create(&dir, 64).unwrap();
        cat.create_index("lb", UCatalog::uniform(8), TreeConfig::default(), 3)
            .unwrap();
        cat.create_index("ca", UCatalog::uniform(8), TreeConfig::default(), 2)
            .unwrap();
        for o in &lb {
            cat.get_mut("lb").unwrap().insert(o);
        }
        for o in &ca {
            cat.get_mut("ca").unwrap().insert(o);
        }
        cat.flush().unwrap();
    }

    let cat = IndexCatalog::<2>::open(&dir, 64).unwrap();
    assert_eq!(cat.names(), vec!["lb", "ca"]);
    let defs: Vec<_> = cat.defs().collect();
    assert_eq!(defs[0].shard_count, 3);
    assert_eq!(defs[1].shard_count, 2);
    assert_matches_oracle(cat.get("lb").unwrap(), &lb_oracle, "lb");
    assert_matches_oracle(cat.get("ca").unwrap(), &ca_oracle, "ca");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Catalog naming rules: 1–64 chars of `[A-Za-z0-9_.-]`, unique.
#[test]
fn index_names_are_validated_and_unique() {
    let dir = temp_dir("names");
    let mut cat = IndexCatalog::<2>::create(&dir, 16).unwrap();
    cat.create_index(
        "ok-name_1.x",
        UCatalog::uniform(4),
        TreeConfig::default(),
        1,
    )
    .unwrap();
    for bad in ["", "has space", "semi;colon", &"x".repeat(65)] {
        assert!(
            cat.create_index(bad, UCatalog::uniform(4), TreeConfig::default(), 1)
                .is_err(),
            "name {bad:?} must be rejected"
        );
    }
    assert!(
        cat.create_index(
            "ok-name_1.x",
            UCatalog::uniform(4),
            TreeConfig::default(),
            1
        )
        .is_err(),
        "duplicate names must be rejected"
    );
    assert!(
        cat.create_index("zero", UCatalog::uniform(4), TreeConfig::default(), 0)
            .is_err(),
        "zero shards must be rejected"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole recovery property, lifted to the whole catalog: crash the
/// shared log anywhere — every frame boundary and a torn tail short of it
/// — and the reopened catalog must answer for *both* indexes exactly like
/// the oracles replaying the committed prefix. One commit marker covers
/// all indexes, so both always land on the same batch boundary.
#[test]
fn catalog_recovery_equals_a_committed_prefix_at_every_crash_point() {
    const BATCHES: usize = 4;
    let lb_all = lb_objects(BATCHES * 12);
    let ca_all = ca_objects(BATCHES * 9);

    let dir = temp_dir("crash");
    {
        let mut cat = IndexCatalog::<2>::create(&dir, 64).unwrap();
        cat.create_index("lb", UCatalog::uniform(8), TreeConfig::default(), 3)
            .unwrap();
        cat.create_index("ca", UCatalog::uniform(8), TreeConfig::default(), 2)
            .unwrap();
    }
    // The backend as the last DDL left it: both indexes empty, all
    // segment files named by catalog.pg, nothing in the log.
    let pristine = temp_dir("crash-pristine");
    copy_dir(&dir, &pristine);

    {
        let mut cat = IndexCatalog::<2>::open(&dir, 64).unwrap();
        for b in 0..BATCHES {
            for o in &lb_all[b * 12..(b + 1) * 12] {
                cat.get_mut("lb").unwrap().insert(o);
            }
            for o in &ca_all[b * 9..(b + 1) * 9] {
                cat.get_mut("ca").unwrap().insert(o);
            }
            cat.flush().unwrap();
        }
    }

    // Oracles per committed prefix k, per index.
    let oracles: Vec<(UTree<2>, UTree<2>)> = (0..=BATCHES)
        .map(|k| {
            (
                oracle_tree(&lb_all[..k * 12]),
                oracle_tree(&ca_all[..k * 9]),
            )
        })
        .collect();

    let frames = Wal::scan(dir.join("wal.log")).unwrap();
    let commit_ends: Vec<u64> = frames
        .iter()
        .filter(|f| f.is_commit())
        .map(|f| f.end)
        .collect();
    assert!(commit_ends.len() >= BATCHES);
    let committed_under = |cut: u64| commit_ends.iter().filter(|&&e| e <= cut).count();

    let mut crash_points = vec![8u64];
    for f in &frames {
        crash_points.push(f.end - 3);
        crash_points.push(f.end);
    }

    let scratch = temp_dir("crash-scratch");
    for &cut in &crash_points {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&pristine, &scratch);
        std::fs::copy(dir.join("wal.log"), scratch.join("wal.log")).unwrap();
        std::fs::OpenOptions::new()
            .write(true)
            .open(scratch.join("wal.log"))
            .unwrap()
            .set_len(cut)
            .unwrap();

        let k = committed_under(cut);
        let cat = IndexCatalog::<2>::open(&scratch, 64)
            .unwrap_or_else(|e| panic!("open after crash at byte {cut} failed: {e}"));
        let (lb_oracle, ca_oracle) = &oracles[k];
        let lb = cat.get("lb").unwrap();
        let ca = cat.get("ca").unwrap();
        assert_eq!(
            (lb.len(), ca.len()),
            (k * 12, k * 9),
            "crash at byte {cut} must recover exactly {k} committed batches in BOTH indexes"
        );
        assert_matches_oracle(lb, lb_oracle, &format!("crash at {cut}, lb"));
        assert_matches_oracle(ca, ca_oracle, &format!("crash at {cut}, ca"));
    }

    for d in [&dir, &pristine, &scratch] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// DDL is snapshot-ordered, not journaled: an index created *after* the
/// last commit survives a crash as an empty index, while the committed
/// data of the older index recovers from the log.
#[test]
fn an_index_created_after_the_last_commit_survives_a_crash_empty() {
    let lb = lb_objects(60);
    let oracle = oracle_tree(&lb);
    let dir = temp_dir("ddl-crash");
    {
        let mut cat = IndexCatalog::<2>::create(&dir, 64).unwrap();
        cat.create_index("lb", UCatalog::uniform(8), TreeConfig::default(), 2)
            .unwrap();
        for o in &lb {
            cat.get_mut("lb").unwrap().insert(o);
        }
        cat.flush().unwrap();
        let committed = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        // DDL after the commit, then uncommitted inserts into both — the
        // "crash" truncates the log back to the last commit marker.
        cat.create_index("late", UCatalog::uniform(8), TreeConfig::default(), 2)
            .unwrap();
        for o in ca_objects(10).iter() {
            cat.get_mut("late").unwrap().insert(o);
            cat.get_mut("lb").unwrap().insert(o);
        }
        drop(cat);
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal.log"))
            .unwrap()
            .set_len(committed)
            .unwrap();
    }

    let cat = IndexCatalog::<2>::open(&dir, 64).unwrap();
    assert_eq!(cat.names(), vec!["lb", "late"]);
    assert_eq!(cat.get("late").unwrap().len(), 0, "uncommitted rolls back");
    assert_eq!(cat.get("lb").unwrap().len(), 60);
    assert_matches_oracle(cat.get("lb").unwrap(), &oracle, "lb after ddl crash");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint folds every index's log state into its segment snapshots,
/// truncates the shared log, and later commits keep recovering.
#[test]
fn catalog_checkpoint_truncates_the_shared_log_and_later_commits_survive() {
    let lb = lb_objects(80);
    let ca = ca_objects(50);
    let dir = temp_dir("ckpt");
    {
        let mut cat = IndexCatalog::<2>::create(&dir, 64).unwrap();
        cat.create_index("lb", UCatalog::uniform(8), TreeConfig::default(), 3)
            .unwrap();
        cat.create_index("ca", UCatalog::uniform(8), TreeConfig::default(), 2)
            .unwrap();
        for o in &lb[..40] {
            cat.get_mut("lb").unwrap().insert(o);
        }
        cat.flush().unwrap();
        cat.checkpoint().unwrap();
        assert_eq!(
            std::fs::metadata(dir.join("wal.log")).unwrap().len(),
            8,
            "checkpoint leaves only the log header"
        );
        for o in &lb[40..] {
            cat.get_mut("lb").unwrap().insert(o);
        }
        for o in &ca {
            cat.get_mut("ca").unwrap().insert(o);
        }
        cat.flush().unwrap();
    }

    let cat = IndexCatalog::<2>::open(&dir, 64).unwrap();
    assert_matches_oracle(cat.get("lb").unwrap(), &oracle_tree(&lb), "lb");
    assert_matches_oracle(cat.get("ca").unwrap(), &oracle_tree(&ca), "ca");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The resident service over a reopened catalog answers exactly like
/// direct scatter-gather execution, and its report covers every request.
#[test]
fn the_query_service_agrees_with_direct_execution_on_a_reopened_catalog() {
    let lb = lb_objects(100);
    let ca = ca_objects(80);
    let dir = temp_dir("service");
    {
        let mut cat = IndexCatalog::<2>::create(&dir, 64).unwrap();
        cat.create_index("lb", UCatalog::uniform(8), TreeConfig::default(), 3)
            .unwrap();
        cat.create_index("ca", UCatalog::uniform(8), TreeConfig::default(), 2)
            .unwrap();
        for o in &lb {
            cat.get_mut("lb").unwrap().insert(o);
        }
        for o in &ca {
            cat.get_mut("ca").unwrap().insert(o);
        }
        cat.flush().unwrap();
    }
    let cat = IndexCatalog::<2>::open(&dir, 64).unwrap();

    let mut requests = Vec::new();
    for (i, q) in probe_range_queries()
        .into_iter()
        .cycle()
        .take(24)
        .enumerate()
    {
        requests.push(ServiceRequest::Range {
            index: if i % 2 == 0 { "lb" } else { "ca" }.to_string(),
            query: q,
        });
    }
    for (i, q) in probe_rank_queries()
        .into_iter()
        .cycle()
        .take(12)
        .enumerate()
    {
        requests.push(ServiceRequest::TopK {
            index: if i % 2 == 0 { "ca" } else { "lb" }.to_string(),
            query: q,
        });
    }

    let (replies, report) = QueryService::new(4, 6).serve(&cat, requests.clone());
    assert_eq!(report.served, requests.len());
    assert!(report.queries_per_sec().is_finite());
    assert!(report.p50_nanos().unwrap() <= report.p99_nanos().unwrap());

    for (request, reply) in requests.iter().zip(&replies) {
        match (request, reply) {
            (ServiceRequest::Range { index, query }, ServiceReply::Range(out)) => {
                let want = cat.get(index).unwrap().execute(query);
                assert_eq!(out.matches, want.matches);
            }
            (ServiceRequest::TopK { index, query }, ServiceReply::TopK(out)) => {
                let want = cat.get(index).unwrap().rank_topk(query);
                assert_eq!(out.matches, want.matches);
            }
            other => panic!("reply kind mismatch: {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
